/**
 * @file
 * The shared kernel core: process table, deterministic round-robin
 * scheduler, blocking syscall machinery, and the syscall dispatch
 * that every OS personality (Linux model, Occlum LibOS, EIP/Graphene
 * baseline) plugs into.
 *
 * Personalities differ in:
 *  - how processes are created and where their memory lives (per-
 *    process address spaces vs. domains in one shared enclave),
 *  - the cost of a syscall round trip (native trap vs. in-enclave
 *    function call vs. OCALL with two world switches),
 *  - the file system behind open() (plain host FS vs. writable
 *    encrypted FS vs. read-only protected files),
 *  - extra costs on IPC (the EIP baseline encrypts pipe traffic
 *    through untrusted memory, paper §3.2),
 *  - syscall-return validation (the Occlum LibOS checks the return
 *    target is a cfi_label of the calling SIP, paper §6).
 */
#ifndef OCCLUM_OSKIT_KERNEL_H
#define OCCLUM_OSKIT_KERNEL_H

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/sim_clock.h"
#include "oelf/abi.h"
#include "oskit/file_object.h"
#include "trace/metrics.h"
#include "vm/cpu.h"

namespace occlum::oskit {

/** Why a process stopped for good. */
enum class DeathCause {
    kNone,       // still alive
    kExited,     // called exit()
    kFault,      // memory/bound/decode fault (killed by the kernel)
    kPrivileged, // executed a privileged instruction
    kKilled,     // kill() by another process
    kPipe,       // wrote to a pipe with no readers (SIGPIPE-shaped)
};

/** Scheduler state of a process. */
enum class ProcState {
    kRunnable,
    kBlocked,
    kDead,
};

/** One process (a SIP under Occlum; a full enclave under EIP). */
struct Process {
    int pid = 0;
    /**
     * Fixed home core (pid % cores, assigned at spawn). Run-queue
     * membership is always on the home core's queue — work stealing
     * changes which core *executes* a quantum, never where the pid is
     * queued, so cross-core wakeups need no routing decision.
     */
    int home_core = 0;
    /**
     * Round sequence number of the last quantum this process ran
     * (SMP only). A pid stolen by an earlier core in the round must
     * not run again when a later core scans its home queue.
     */
    uint64_t ran_round = 0;
    ProcState state = ProcState::kRunnable;
    DeathCause death = DeathCause::kNone;
    int64_t exit_code = 0;
    vm::FaultKind last_fault = vm::FaultKind::kNone;
    uint64_t last_fault_addr = 0;

    /** CPU + memory; both owned by the personality's process record. */
    vm::Cpu *cpu = nullptr;
    vm::AddressSpace *space = nullptr;

    std::map<int, FilePtr> fds;

    std::vector<std::string> argv;

    /** Owned resources for per-process-space personalities. */
    std::unique_ptr<vm::AddressSpace> owned_space;
    std::unique_ptr<vm::Cpu> owned_cpu;

    /** Domain geometry (used by Occlum; Linux uses it for the PCB). */
    uint64_t domain_base = 0;
    uint64_t d_begin = 0; // data region begin
    uint64_t d_end = 0;   // data region end (exclusive)

    /** mmap bump area inside the heap. */
    uint64_t mmap_cursor = 0;
    uint64_t mmap_end = 0;

    /** Earliest time a blocked process should retry (cycles). */
    uint64_t wake_time = ~0ull;

    /**
     * Set when a wakeup (wait-queue notification or due timer) has
     * scheduled this blocked process for one retry dispatch. Cleared
     * when the retry runs.
     */
    bool wake_pending = false;

    /**
     * Every wait queue this blocked process is registered on (one for
     * read/write/accept/waitpid, several for poll). Any wake detaches
     * it from all of them.
     */
    std::vector<WaitQueue *> waiting_on;

    /** In-flight (possibly blocked) syscall state. */
    bool in_syscall = false;
    uint64_t sys_num = 0;
    uint64_t sys_args[abi::kSyscallArgs] = {};
    uint64_t sys_ret_addr = 0;
    /**
     * Absolute deadline (cycles) for the in-flight syscall, computed
     * once at the first dispatch so blocked retries do not slide it.
     * ~0 = none/unset; reset on syscall entry.
     */
    uint64_t sys_deadline = ~0ull;

    /**
     * Epoll objects reachable from this process's fd table, so close()
     * can auto-remove the closed fd from every interest list without
     * scanning the whole table (O(#epolls), and #epolls is ~1).
     * Maintained by kEpollCreate / kClose / kill_process.
     */
    std::vector<EpollObject *> epolls;

    /**
     * Scan cursor for alloc_fd: every descriptor below it is known to
     * be occupied. Installing fds never invalidates it; any erase at
     * `fd` must lower it via fd_closed(fd). Keeps allocation O(1)
     * amortized instead of O(fds) — at a million open connections the
     * old full scan made every accept quadratic.
     */
    int fd_scan_hint = 0;

    void
    fd_closed(int fd)
    {
        fd_scan_hint = std::min(fd_scan_hint, fd);
    }

    /**
     * POSIX-style allocation: the lowest descriptor not currently in
     * the fd table. The caller must install the returned fd in `fds`
     * before allocating again (pipe() allocates two in a row), or the
     * same number comes back twice.
     */
    int
    alloc_fd()
    {
        int fd = fd_scan_hint;
        auto it = fds.lower_bound(fd);
        while (it != fds.end() && it->first == fd) {
            ++fd;
            ++it;
        }
        // Everything below the returned fd is occupied, so the next
        // scan may start here (the caller installs this fd).
        fd_scan_hint = fd;
        return fd;
    }
};

/** Post-mortem record kept after a process is reaped. */
struct DeathRecord {
    DeathCause cause = DeathCause::kNone;
    int64_t code = 0;
    vm::FaultKind fault = vm::FaultKind::kNone;
    uint64_t fault_addr = 0;
};

/** Aggregate execution statistics. */
struct KernelStats {
    uint64_t spawns = 0;
    uint64_t syscalls = 0;
    uint64_t user_instructions = 0;
    uint64_t faults = 0;
};

/** The shared kernel. Subclass per OS personality. */
class Kernel
{
  public:
    Kernel(SimClock &clock, host::HostFileStore &binaries,
           host::NetSim *net = nullptr)
        : clock_(&clock), binaries_(&binaries), net_(net),
          // Register the kernel's metrics once; the registry keeps
          // the addresses stable for the lifetime of the process.
          ctr_syscalls_(
              &trace::Registry::instance().counter("kernel.syscalls")),
          ctr_spawns_(
              &trace::Registry::instance().counter("kernel.spawns")),
          ctr_faults_(
              &trace::Registry::instance().counter("kernel.faults")),
          hist_syscall_cycles_(&trace::Registry::instance().histogram(
              "kernel.syscall_cycles")),
          ctr_wakeups_(
              &trace::Registry::instance().counter("kernel.wakeups")),
          ctr_wasted_retries_(&trace::Registry::instance().counter(
              "kernel.wasted_retries")),
          ctr_deferred_retries_(&trace::Registry::instance().counter(
              "kernel.deferred_retries")),
          ctr_poll_calls_(&trace::Registry::instance().counter(
              "kernel.poll_calls")),
          ctr_sched_visits_(&trace::Registry::instance().counter(
              "kernel.sched_visits")),
          ctr_epoll_waits_(&trace::Registry::instance().counter(
              "kernel.epoll_waits"))
    {
        install_net_events();
    }
    virtual ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // ---- public control --------------------------------------------
    /**
     * Start a new process running `path` with `argv` (argv[0] is the
     * program name by convention). stdio_fds, when given, maps the
     * child's fds 0..2 from the *parent_pid* process's descriptors;
     * parent_pid < 0 takes stdio from the console.
     */
    Result<int> spawn(const std::string &path,
                      const std::vector<std::string> &argv,
                      int parent_pid = -1,
                      const std::array<int64_t, 3> *stdio_fds = nullptr);

    /**
     * Run one scheduler round over all processes. Returns true if any
     * process made progress (executed instructions or completed a
     * syscall). When false, callers may advance the clock to
     * next_wake_time() or conclude the system is idle.
     */
    bool step_round();

    /**
     * Run until every process is dead, advancing the clock over
     * blocking waits. Panics on deadlock (all blocked forever) after
     * diagnosing, unless `allow_idle` is set, in which case it
     * returns with processes still blocked (e.g. a server waiting
     * for outside traffic).
     */
    void run(bool allow_idle = false);

    bool all_exited() const;
    /** Earliest known wake time over all blocked processes (~0=none). */
    uint64_t next_wake_time() const;

    /**
     * Configure the number of simulated cores. Must be called before
     * the first spawn (home cores are assigned at spawn). cores == 1
     * (the default) runs the exact single-queue walk this kernel has
     * always had — bit-identical cycle streams; cores > 1 switches to
     * per-core run queues with deterministic work stealing under a
     * per-round core barrier (see step_round_smp).
     */
    void set_cores(int cores);
    int cores() const { return num_cores_; }
    /** Core whose share of the current round is executing. */
    int current_core() const { return current_core_; }

    /** Pids in death order — the determinism tests' fingerprint. */
    const std::vector<int> &death_order() const { return death_order_; }

    /** Timer-heap introspection (compaction tests). */
    size_t timer_entries() const { return timers_.size(); }
    uint64_t timer_dead_entries() const { return timer_dead_; }

    Result<int64_t> exit_code(int pid) const;
    /** Full post-mortem info (cause, fault kind) for a dead pid. */
    Result<DeathRecord> death_record(int pid) const;
    const Process *find_process(int pid) const;

    SimClock &clock() { return *clock_; }
    const std::string &console() const { return console_; }
    void clear_console() { console_.clear(); }
    const KernelStats &stats() const { return stats_; }
    host::NetSim *net() { return net_; }
    host::HostFileStore &binaries() { return *binaries_; }

    /** Instructions per scheduling quantum. */
    void set_quantum(uint64_t quantum) { quantum_ = quantum; }

    // ---- wakeups ---------------------------------------------------
    /**
     * Notify a wait queue that the condition it guards may now (or at
     * `when`, if in the future) hold. Waiters whose condition is due
     * are marked wake-pending and rejoin the scheduling walk at their
     * pid position; future events arm the timer heap instead, leaving
     * the waiters queued so earlier events can still reach them.
     */
    void wake_queue(WaitQueue &queue, uint64_t when);

    /** Immediate wakeup of one blocked process (if any is blocked). */
    void wake_process(Process &proc);

  private:
    /** Route a queue notification to its epoll watches (wake_queue). */
    void notify_watches(WaitQueue &queue, uint64_t when);

  public:

    // ---- personality hooks --------------------------------------------
  protected:
    /** Create the process record: memory, CPU, loaded image, PCB. */
    virtual Result<std::unique_ptr<Process>>
    create_process(const std::string &path,
                   const std::vector<std::string> &argv) = 0;

    /** Tear down personality resources (e.g. free the domain slot). */
    virtual void destroy_process(Process &proc) = 0;

    /** Cycles charged on every syscall entry/exit round trip. */
    virtual uint64_t syscall_cost() const = 0;

    /** Open a path on the personality's file system. */
    virtual Result<FilePtr> fs_open(Process &proc, const std::string &path,
                                    uint64_t flags) = 0;
    virtual Status fs_unlink(const std::string &path) = 0;
    virtual Status fs_mkdir(const std::string &path) = 0;

  public:
    /** Per-byte cycles for moving pipe data (EIP adds crypto). */
    virtual double pipe_byte_cost() const
    {
        return CostModel::kPipeCopyCyclesPerByte;
    }

    /** Extra cycles per pipe operation (EIP: two world switches). */
    virtual uint64_t pipe_op_cost() const { return 0; }

    /** Extra cycles per network operation (enclaves: an OCALL). */
    virtual uint64_t net_op_cost() const { return 0; }

  protected:

    /**
     * Validate the syscall return target popped off the user stack.
     * The Occlum LibOS enforces that it is a cfi_label of the calling
     * SIP (paper §6); others accept anything.
     */
    virtual Status
    validate_syscall_return(Process &proc, uint64_t target)
    {
        (void)proc;
        (void)target;
        return Status();
    }

    /** Zero-fill cost for anonymous mmap (Occlum does it manually). */
    virtual uint64_t mmap_zero_cost(uint64_t len) const
    {
        (void)len;
        return 0;
    }

    /**
     * Check a user buffer is legal for the calling process. Occlum
     * confines it to the SIP's own data region — a malicious SIP must
     * not use the LibOS as a deputy to read other SIPs' memory.
     */
    virtual Status validate_user_range(Process &proc, uint64_t addr,
                                       uint64_t len);

    /**
     * Fault-injection hook (src/faultsim, aex_every): an asynchronous
     * enclave exit at the current instruction boundary. Personalities
     * that model enclaves save/restore the SSA and charge the
     * AEX+ERESUME transitions; the base kernel has no enclave, so the
     * default is a no-op.
     */
    virtual void on_injected_aex(Process &proc) { (void)proc; }

    // ---- helpers available to personalities -----------------------------
  public:
    void charge(uint64_t cycles) { clock_->advance(cycles); }

    /** Copy data out of / into a process's memory (EFAULT checked). */
    Status copy_from_user(Process &proc, uint64_t addr, void *out,
                          uint64_t len);
    Status copy_to_user(Process &proc, uint64_t addr, const void *in,
                        uint64_t len);
    /** Read a NUL-terminated or length-prefixed string. */
    Result<std::string> read_user_string(Process &proc, uint64_t addr,
                                         uint64_t len);
    Result<std::string> read_user_cstring(Process &proc, uint64_t addr,
                                          uint64_t max_len = 4096);

    /** Kill a process (fault/violation path). */
    void kill_process(Process &proc, DeathCause cause, int64_t code);

  protected:
    /** Handle one ltrap syscall; true if it completed (not blocked). */
    bool handle_syscall(Process &proc);

    /**
     * Block the calling process on `queues` until an explicit wakeup,
     * with an optional timed wake at `wake` (cycles, ~0 = none). The
     * return value is the std::nullopt a dispatch case returns.
     */
    std::optional<int64_t>
    block_on(Process &proc, uint64_t wake,
             const std::vector<WaitQueue *> &queues);

    /** Detach a process from every wait queue it joined. */
    void detach_waits(Process &proc);

    /** Schedule one retry dispatch for a blocked process. */
    void mark_wake_pending(Process &proc);

    /** Arm the timer heap (and the process's wake_time) for `when`. */
    void arm_timer(Process &proc, uint64_t when);

    /** Pop every due timer, waking the processes they refer to. */
    void fire_due_timers();

    /** Timer-heap plumbing (lazy deletion + opportunistic compaction). */
    void timer_push(uint64_t when, int pid) const;
    void timer_pop() const;
    bool timer_entry_live(uint64_t when, int pid) const;
    void compact_timers_if_worthwhile() const;

    /** The classic single-queue walk (cores == 1, bit-identical). */
    bool step_round_uni();
    /** Per-core walks under the round barrier (cores > 1). */
    bool step_round_smp();
    /** Retry every wake-pending pid homed on `core` (pids <= cap). */
    void smp_drain_wake_pending(int core, int cap);
    /**
     * Pick the pid core `core` executes this round: the next eligible
     * pid on its own queue above the rotor (wrapping once), else a
     * steal — the lowest eligible pid from the most-loaded other
     * queue (ties: lowest core index), only when the victim has at
     * least two eligible pids left. Returns -1 when the core idles.
     */
    int smp_pick(int core, int cap, bool &stolen);
    /** One quantum + exit handling for a runnable process. */
    void run_one_quantum(Process &proc);

    /** Point the NetSim's event observers at this kernel. */
    void install_net_events();

    /**
     * Run one scheduling quantum of user code. When an AEX storm is
     * armed the quantum is sliced at injected-AEX boundaries (the
     * interpreter charges per instruction, so slicing itself is
     * invisible — only on_injected_aex() adds cost); when idle this
     * is exactly cpu->run(quantum_).
     */
    vm::CpuExit run_user_quantum(Process &proc);

    /** Dispatch by number; nullopt = would block (retry later). */
    std::optional<int64_t> dispatch(Process &proc, uint64_t num,
                                    const uint64_t args[abi::kSyscallArgs]);

    SimClock *clock_;
    host::HostFileStore *binaries_;
    host::NetSim *net_;
    std::map<int, std::unique_ptr<Process>> procs_;
    std::map<int, DeathRecord> reaped_;
    int next_pid_ = 1;
    uint64_t quantum_ = 20000;
    /** Instructions until the next injected AEX, per core (storms). */
    std::vector<uint64_t> aex_countdown_ = {0};
    std::string console_;
    KernelStats stats_;
    /** Registry-backed metrics (registered in the constructor). */
    trace::Counter *ctr_syscalls_;
    trace::Counter *ctr_spawns_;
    trace::Counter *ctr_faults_;
    trace::Histogram *hist_syscall_cycles_;
    trace::Counter *ctr_wakeups_;
    trace::Counter *ctr_wasted_retries_;
    /** Wake-pending retries pushed to the next round because the SIP
     *  already ran a (stolen) quantum this round. */
    trace::Counter *ctr_deferred_retries_;
    trace::Counter *ctr_poll_calls_;
    trace::Counter *ctr_sched_visits_;
    trace::Counter *ctr_epoll_waits_;
    /** Processes whose blocked syscall should be retried. */
    bool any_progress_ = false;
    /** Reused read/write bounce buffer (grows to the largest I/O). */
    Bytes io_scratch_;

    /**
     * Per-core scheduling walks: runnable pids plus wake-pending
     * blocked pids, visited in ascending order, one set per core
     * (exactly one set when cores == 1 — the classic single walk).
     * Membership is always by home core; blocked processes leave the
     * set, so idle connections cost zero dispatches per round.
     */
    std::vector<std::set<int>> run_queues_{1};

    /** The home-core queue a pid is (or would be) enqueued on. */
    std::set<int> &home_queue(const Process &proc)
    {
        return run_queues_[proc.home_core];
    }

    // ---- SMP state (inert at cores == 1) ---------------------------
    int num_cores_ = 1;
    int current_core_ = 0;
    /** Monotonic round counter stamping Process::ran_round. */
    uint64_t round_seq_ = 0;
    /**
     * Per-core walk rotor: the last pid the core ran from its own
     * queue. The next pick resumes above it (wrapping once), so a
     * core's SIPs share quanta round-robin instead of the lowest pid
     * monopolizing the core.
     */
    std::vector<int> core_rotor_{0};
    /** Per-core metrics, registered by set_cores when cores > 1. */
    struct CoreCounters {
        trace::Counter *quanta = nullptr;
        trace::Counter *steals = nullptr;
        trace::Counter *wakeups = nullptr;
    };
    std::vector<CoreCounters> core_ctrs_;

    /** Pids in the order they died (determinism fingerprint). */
    std::vector<int> death_order_;

    /**
     * Min-heap of (wake_time, pid) timed waits, replacing the
     * O(procs) next_wake_time() scan. Lazy deletion: an entry is live
     * iff the pid is still blocked, not wake-pending, and its
     * wake_time equals the entry's (stale entries pop harmlessly).
     * timer_dead_ counts entries known to be stale; once they
     * dominate, compact_timers() rebuilds the heap from the live
     * entries — without it a poll/epoll timeout re-armed and
     * cancelled in a loop grows the heap without bound (every re-arm
     * pushes, the cancelled entry is far in the future and never
     * reaches the top to be pruned). Mutable so next_wake_time() can
     * prune dead entries.
     */
    mutable std::vector<std::pair<uint64_t, int>> timers_;
    mutable uint64_t timer_dead_ = 0;

    /** waitpid(pid) wait queues, keyed by the awaited pid. */
    std::map<int, WaitQueue> pid_waiters_;

    /** Live sockets by (connection, at_server), for NetSim events. */
    std::map<std::pair<host::NetSim::Connection *, bool>, FileObject *>
        socket_registry_;
    /** Live listeners by port, for NetSim connect events. */
    std::map<uint16_t, FileObject *> listener_registry_;

  public:
    /** Registry maintenance, called from file-object close paths. */
    void register_socket(host::NetSim::Connection *conn, bool at_server,
                         FileObject *file);
    void socket_closed(host::NetSim::Connection *conn, bool at_server);
    void listener_closed(uint16_t port);
};

} // namespace occlum::oskit

#endif // OCCLUM_OSKIT_KERNEL_H
