/**
 * @file
 * The domain loader shared by all OS personalities.
 *
 * Performs the loader duties of paper §6: copy segments, write the
 * PCB (trampoline address, heap bounds, argv — the auxiliary-vector
 * stand-in), inject the trampoline page (the only way out of the
 * MMDSFI sandbox), rewrite the domain ID into every cfi_label, and
 * initialize the CPU state including the MPX bound registers.
 */
#ifndef OCCLUM_OSKIT_LOADER_H
#define OCCLUM_OSKIT_LOADER_H

#include <string>
#include <vector>

#include "base/result.h"
#include "oelf/oelf.h"
#include "vm/cpu.h"

namespace occlum::oskit {

/** Resolved addresses of a loaded domain. */
struct LoadedDomain {
    uint64_t base = 0;       // trampoline page
    uint64_t c_begin = 0;    // user code
    uint64_t d_begin = 0;    // data region (PCB at the start)
    uint64_t d_end = 0;      // exclusive
    uint64_t heap_begin = 0; // malloc area (exposed via PCB)
    uint64_t heap_end = 0;
    uint64_t mmap_begin = 0; // kernel-managed mapping area
    uint64_t mmap_end = 0;
    uint64_t stack_top = 0;
    uint64_t entry = 0;
    uint32_t domain_id = 0;
};

struct LoadOptions {
    uint32_t domain_id = 0;
    /** Rewrite the last 4 bytes of every cfi_label to domain_id. */
    bool rewrite_cfi = true;
    /**
     * Map the pages (Linux/EIP). When false the pages must already
     * exist (Occlum's preallocated SGX 1.0 domain slots); they are
     * zeroed instead.
     */
    bool map_pages = true;
    /**
     * Map the data region RWX instead of RW: the Graphene-era "RWX
     * page pool" pitfall of SGX 1.0 LibOSes (paper §7) that makes
     * code-injection attacks land. Occlum never sets this.
     */
    bool data_rwx = false;
};

/**
 * Place `image` at `base` in `space` and return the layout. Does not
 * charge simulated time: cost policy belongs to the personality.
 */
Result<LoadedDomain> load_image(vm::AddressSpace &space,
                                const oelf::Image &image, uint64_t base,
                                const std::vector<std::string> &argv,
                                const LoadOptions &options);

/** Set up a CPU at the domain's entry (registers, sp, bnd0/bnd1). */
void init_cpu(vm::Cpu &cpu, const LoadedDomain &domain);

} // namespace occlum::oskit

#endif // OCCLUM_OSKIT_LOADER_H
