#include "oskit/epoll.h"

#include <algorithm>

#include "oskit/kernel.h"

namespace occlum::oskit {

EpollObject::~EpollObject()
{
    for (auto &[fd, entry] : interest_) {
        detach_watches(entry);
    }
}

void
EpollObject::attach_watches(int fd, Entry &entry)
{
    // The read-side watch is unconditional: hangup and error edges
    // (peer close, writer gone) are delivered through read-queue
    // wakeups and are always reported, like poll()'s POLLERR/POLLHUP.
    entry.read_watch = {this, fd};
    entry.read_q = &entry.file->read_waiters();
    entry.read_q->add_watch(&entry.read_watch);
    if (entry.events & static_cast<uint64_t>(abi::kPollOut)) {
        entry.write_watch = {this, fd};
        entry.write_q = &entry.file->write_waiters();
        entry.write_q->add_watch(&entry.write_watch);
    }
}

void
EpollObject::detach_watches(Entry &entry)
{
    if (entry.read_q) {
        entry.read_q->remove_watch(&entry.read_watch);
        entry.read_q = nullptr;
    }
    if (entry.write_q) {
        entry.write_q->remove_watch(&entry.write_watch);
        entry.write_q = nullptr;
    }
}

void
EpollObject::enqueue_candidate(int fd, Entry &entry, uint64_t when)
{
    if (entry.queued) {
        // An earlier event landing sooner pulls the due time forward.
        entry.due = std::min(entry.due, when);
        return;
    }
    entry.queued = true;
    entry.due = when;
    ready_.push_back(fd);
}

void
EpollObject::drop_from_ready(int fd)
{
    ready_.erase(std::remove(ready_.begin(), ready_.end(), fd),
                 ready_.end());
}

bool
EpollObject::reaches(const EpollObject *target) const
{
    for (const auto &[fd, entry] : interest_) {
        auto *nested = dynamic_cast<const EpollObject *>(entry.file.get());
        if (!nested) {
            continue;
        }
        if (nested == target || nested->reaches(target)) {
            return true;
        }
    }
    return false;
}

void
EpollObject::prime_entry(Kernel &kernel, int fd, Entry &entry)
{
    // ADD/MOD-time readiness: a level that is already high, or data
    // already in flight, produces no future wake_queue notification —
    // the entry must become a candidate now or the event is lost.
    uint64_t bits =
        entry.file->poll_ready(kernel) &
        (entry.events |
         static_cast<uint64_t>(abi::kPollErr | abi::kPollHup));
    uint64_t now = kernel.clock().cycles();
    if (bits != 0) {
        enqueue_candidate(fd, entry, now);
        // Propagate to this epoll's own waiters/watchers (a blocked
        // epoll_wait on a shared fd, or a parent epoll nesting us).
        kernel.wake_queue(read_waiters(), now);
        return;
    }
    uint64_t due = entry.file->next_event_time(kernel);
    if (due != ~0ull) {
        enqueue_candidate(fd, entry, due);
        kernel.wake_queue(read_waiters(), due);
    }
}

Result<int64_t>
EpollObject::add(Kernel &kernel, int fd, const FilePtr &file,
                 uint64_t events)
{
    if (interest_.count(fd)) {
        return Error(ErrorCode::kExist, "epoll_ctl: fd already added");
    }
    if (file.get() == this) {
        return Error(ErrorCode::kLoop, "epoll_ctl: self-add");
    }
    if (auto *nested = dynamic_cast<EpollObject *>(file.get())) {
        if (nested->reaches(this)) {
            return Error(ErrorCode::kLoop, "epoll_ctl: watch cycle");
        }
    }
    Entry &entry = interest_[fd];
    entry.file = file;
    entry.edge = (events & static_cast<uint64_t>(abi::kEpollEt)) != 0;
    entry.events = events & ~static_cast<uint64_t>(abi::kEpollEt);
    attach_watches(fd, entry);
    prime_entry(kernel, fd, entry);
    return 0;
}

Result<int64_t>
EpollObject::modify(Kernel &kernel, int fd, uint64_t events)
{
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
        return Error(ErrorCode::kNoEnt, "epoll_ctl: fd not watched");
    }
    Entry &entry = it->second;
    detach_watches(entry);
    entry.edge = (events & static_cast<uint64_t>(abi::kEpollEt)) != 0;
    entry.events = events & ~static_cast<uint64_t>(abi::kEpollEt);
    attach_watches(fd, entry);
    // MOD re-arms: re-evaluate readiness under the new mask (Linux
    // does the same wakeup check in ep_modify).
    if (!entry.queued) {
        prime_entry(kernel, fd, entry);
    }
    return 0;
}

Result<int64_t>
EpollObject::remove(int fd)
{
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
        return Error(ErrorCode::kNoEnt, "epoll_ctl: fd not watched");
    }
    detach_watches(it->second);
    if (it->second.queued) {
        drop_from_ready(fd);
    }
    interest_.erase(it);
    return 0;
}

void
EpollObject::forget_fd(int fd)
{
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
        return;
    }
    detach_watches(it->second);
    if (it->second.queued) {
        drop_from_ready(fd);
    }
    interest_.erase(it);
}

void
EpollObject::on_source_event(Kernel &kernel, int fd, uint64_t when)
{
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
        return;
    }
    enqueue_candidate(fd, it->second, when);
    // Recursive wake: blocked epoll_wait callers get their retry (or
    // a timer at `when` for in-flight data), and any parent epoll
    // watching this epoll fd gets the same notification — nesting
    // falls out of the same mechanism.
    kernel.wake_queue(read_waiters(), when);
}

int64_t
EpollObject::collect(Kernel &kernel, int64_t *out, uint64_t max_events,
                     uint64_t &min_due)
{
    uint64_t now = kernel.clock().cycles();
    int64_t n = 0;
    std::deque<int> kept;
    size_t pending = ready_.size();
    while (pending-- > 0) {
        int fd = ready_.front();
        ready_.pop_front();
        auto it = interest_.find(fd);
        if (it == interest_.end() || !it->second.queued) {
            continue; // stale: removed or already dequeued
        }
        Entry &entry = it->second;
        if (n == static_cast<int64_t>(max_events)) {
            kept.push_back(fd); // out of room this call; keep queued
            continue;
        }
        if (entry.due > now) {
            // In-flight: stays a candidate; the caller blocks no
            // later than this.
            min_due = std::min(min_due, entry.due);
            kept.push_back(fd);
            continue;
        }
        uint64_t bits =
            entry.file->poll_ready(kernel) &
            (entry.events |
             static_cast<uint64_t>(abi::kPollErr | abi::kPollHup));
        if (bits != 0) {
            out[2 * n] = fd;
            out[2 * n + 1] = static_cast<int64_t>(bits);
            ++n;
            if (entry.edge) {
                // Edge-triggered: consumed. The next wake_queue
                // notification (a genuinely new edge) re-queues it.
                entry.queued = false;
            } else {
                kept.push_back(fd); // level-triggered: still high
            }
            continue;
        }
        uint64_t due = entry.file->next_event_time(kernel);
        if (due != ~0ull && due > now) {
            entry.due = due;
            min_due = std::min(min_due, due);
            kept.push_back(fd);
        } else {
            entry.queued = false; // spurious candidate: drop
        }
    }
    // Order-preserving: verified-but-kept candidates rotate back in
    // their original relative order (fairness across busy fds).
    if (ready_.empty()) {
        ready_ = std::move(kept);
    } else {
        for (int fd : kept) {
            ready_.push_back(fd);
        }
    }
    return n;
}

uint64_t
EpollObject::poll_ready(Kernel &kernel)
{
    uint64_t now = kernel.clock().cycles();
    for (int fd : ready_) {
        auto it = interest_.find(fd);
        if (it == interest_.end() || !it->second.queued) {
            continue;
        }
        const Entry &entry = it->second;
        if (entry.due > now) {
            continue;
        }
        uint64_t bits =
            it->second.file->poll_ready(kernel) &
            (entry.events |
             static_cast<uint64_t>(abi::kPollErr | abi::kPollHup));
        if (bits != 0) {
            return static_cast<uint64_t>(abi::kPollIn);
        }
    }
    return 0;
}

uint64_t
EpollObject::next_event_time(Kernel &kernel)
{
    uint64_t now = kernel.clock().cycles();
    uint64_t min_due = ~0ull;
    for (int fd : ready_) {
        auto it = interest_.find(fd);
        if (it == interest_.end() || !it->second.queued) {
            continue;
        }
        uint64_t due = it->second.due;
        if (due > now) {
            min_due = std::min(min_due, due);
        }
    }
    return min_due;
}

void
EpollObject::on_fd_release(Kernel &kernel)
{
    (void)kernel;
    if (--fd_refs_ == 0) {
        for (auto &[fd, entry] : interest_) {
            detach_watches(entry);
        }
        interest_.clear();
        ready_.clear();
    }
}

} // namespace occlum::oskit
