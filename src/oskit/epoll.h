/**
 * @file
 * Kernel-side epoll: an interest list keyed by fd with a per-epoll
 * ready list, so kEpollWait dispatches O(active) instead of
 * re-scanning every interested fd the way kPoll does.
 *
 * Design (DESIGN.md §3.3):
 *  - Each interest entry holds a strong reference to the watched
 *    FileObject plus up to two EpollWatch subscriptions registered on
 *    the file's read/write WaitQueues. Kernel::wake_queue routes every
 *    notification it would deliver to waiters through the queue's
 *    watches as well, which moves the entry's fd onto this epoll's
 *    ready list and recursively wakes the epoll's own read waiters —
 *    that recursion is what makes epoll fds nest inside other epolls.
 *  - The ready list holds *candidates*: fds whose readiness may have
 *    changed, each stamped with the simulated cycle at which the
 *    event lands (future for in-flight network data). collect()
 *    verifies candidates against poll_ready() at dispatch time, so a
 *    spurious notification costs O(1) and never surfaces to the user.
 *  - Level-triggered entries stay on the ready list while ready;
 *    edge-triggered entries are dequeued when reported and only
 *    re-queued by the next wake_queue notification — i.e. after the
 *    level drains and re-arms, matching EPOLLET.
 *
 * The EpollObject is itself a pollable FileObject (POLLIN when any
 * candidate is due and ready), subject to the normal fd lifecycle.
 */
#ifndef OCCLUM_OSKIT_EPOLL_H
#define OCCLUM_OSKIT_EPOLL_H

#include <deque>
#include <map>

#include "oskit/file_object.h"

namespace occlum::oskit {

class EpollObject : public FileObject
{
  public:
    EpollObject() = default;
    ~EpollObject() override;

    /**
     * EPOLL_CTL_ADD. `events` is a mask of abi::kPoll* bits plus the
     * optional abi::kEpollEt flag. Errors: EEXIST if fd is already in
     * the interest list, ELOOP if adding `file` would create a watch
     * cycle (self-add or a nested epoll that reaches back here).
     */
    Result<int64_t> add(Kernel &kernel, int fd, const FilePtr &file,
                        uint64_t events);
    /** EPOLL_CTL_MOD. ENOENT if fd is not in the interest list. */
    Result<int64_t> modify(Kernel &kernel, int fd, uint64_t events);
    /** EPOLL_CTL_DEL. ENOENT if fd is not in the interest list. */
    Result<int64_t> remove(int fd);

    /**
     * Close of `fd` in the owning process: drop the interest entry if
     * present (no error if absent). Matches Linux's auto-removal of
     * closed descriptors from every epoll they were registered with.
     */
    void forget_fd(int fd);

    /**
     * A watched source queue fired for interest entry `fd` (called by
     * Kernel::wake_queue through the queue's EpollWatch list). `when`
     * is the simulated cycle the event lands; future events queue a
     * candidate stamped with that due time.
     */
    void on_source_event(Kernel &kernel, int fd, uint64_t when);

    /**
     * Pop up to `max_events` ready events into `out` as {fd, revents}
     * int64 pairs. Level-triggered entries that remain ready stay
     * queued; edge-triggered entries are dequeued when reported.
     * `min_due` receives the earliest future candidate due time (for
     * the caller's block deadline). Cost is O(ready), never
     * O(interested).
     */
    int64_t collect(Kernel &kernel, int64_t *out, uint64_t max_events,
                    uint64_t &min_due);

    /** True if `fd` is in the interest list. */
    bool contains(int fd) const { return interest_.count(fd) != 0; }
    size_t interest_size() const { return interest_.size(); }

    /** Watch-cycle check: can events from `target` reach this epoll? */
    bool reaches(const EpollObject *target) const;

    // ---- FileObject: an epoll fd is itself pollable ----------------
    uint64_t poll_ready(Kernel &kernel) override;
    uint64_t next_event_time(Kernel &kernel) override;
    void on_fd_acquire() override { ++fd_refs_; }
    void on_fd_release(Kernel &kernel) override;

  private:
    struct Entry {
        FilePtr file;
        uint64_t events = 0; // requested abi::kPoll* bits
        bool edge = false;   // abi::kEpollEt
        bool queued = false; // on ready_ (invariant: queued ⟺ listed)
        uint64_t due = 0;    // cycle the queued event lands
        EpollWatch read_watch;
        EpollWatch write_watch;
        // The queues the watches were registered on (kept alive by
        // `file`), remembered so detach never guesses.
        WaitQueue *read_q = nullptr;
        WaitQueue *write_q = nullptr;
    };

    void attach_watches(int fd, Entry &entry);
    void detach_watches(Entry &entry);
    /** Queue fd as a candidate (or pull its due time earlier). */
    void enqueue_candidate(int fd, Entry &entry, uint64_t when);
    /** Initial/MOD-time readiness probe: queue if ready or in-flight. */
    void prime_entry(Kernel &kernel, int fd, Entry &entry);
    void drop_from_ready(int fd);

    std::map<int, Entry> interest_;
    std::deque<int> ready_;
    int fd_refs_ = 0;
};

} // namespace occlum::oskit

#endif // OCCLUM_OSKIT_EPOLL_H
