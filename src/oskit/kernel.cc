#include "oskit/kernel.h"

#include <algorithm>

#include "base/log.h"
#include "oskit/epoll.h"
#include "faultsim/faultsim.h"
#include "trace/trace.h"

namespace occlum::oskit {

using abi::Sys;

namespace {

int64_t
neg_errno(ErrorCode code)
{
    return -static_cast<int64_t>(code);
}

/**
 * A descriptor leaving the fd table must also leave the epoll world:
 * a non-epoll fd is auto-removed from every interest list (Linux
 * semantics — a dead descriptor must not keep producing events), and
 * dropping the last descriptor of an epoll object removes it from
 * the process's epoll roster (a stale roster entry dangles once the
 * shared_ptr destroys the object). Shared by kClose and kDup2 —
 * dup2's implicit close used to skip both steps, so a watched fd
 * replaced by dup2 kept reporting events for the old file, and
 * dup2 over the last fd of an epoll left a freed pointer behind.
 */
void
epoll_fd_dropped(Process &proc, int fd, const FilePtr &file)
{
    if (auto *ep = dynamic_cast<EpollObject *>(file.get())) {
        bool still_open = false;
        for (const auto &[ofd, f] : proc.fds) {
            if (f.get() == ep) {
                still_open = true;
                break;
            }
        }
        if (!still_open) {
            auto &eps = proc.epolls;
            eps.erase(std::remove(eps.begin(), eps.end(), ep),
                      eps.end());
        }
    } else {
        for (EpollObject *ep : proc.epolls) {
            ep->forget_fd(fd);
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// user-memory helpers
// ---------------------------------------------------------------------

Status
Kernel::validate_user_range(Process &proc, uint64_t addr, uint64_t len)
{
    if (len == 0) {
        return Status();
    }
    if (addr + len < addr || !proc.space->is_mapped(addr, len)) {
        return Status(ErrorCode::kFault, "bad user pointer");
    }
    return Status();
}

Status
Kernel::copy_from_user(Process &proc, uint64_t addr, void *out,
                       uint64_t len)
{
    if (len == 0) {
        return Status();
    }
    OCC_RETURN_IF_ERROR(validate_user_range(proc, addr, len));
    // All-or-nothing: probe the whole range before touching a byte.
    // A personality's validate override may only check region bounds
    // (Occlum checks [d_begin, d_end)), and the raw accessors fault
    // mid-copy at the first unmapped page — which for copies *out*
    // would leave a half-filled kernel buffer treated as valid.
    if (addr + len < addr || !proc.space->is_mapped(addr, len)) {
        return Status(ErrorCode::kFault, "copy_from_user: unmapped");
    }
    if (proc.space->read_raw(addr, out, len) != vm::AccessFault::kNone) {
        return Status(ErrorCode::kFault, "copy_from_user fault");
    }
    return Status();
}

Status
Kernel::copy_to_user(Process &proc, uint64_t addr, const void *in,
                     uint64_t len)
{
    if (len == 0) {
        return Status();
    }
    OCC_RETURN_IF_ERROR(validate_user_range(proc, addr, len));
    // All-or-nothing: a multi-page write_raw modifies every page up
    // to the first unmapped one before faulting, so without this
    // probe a syscall that returns EFAULT would still have partially
    // scribbled over user memory (observable page-boundary partial
    // copies — found by the faultsim crash-monkey).
    if (addr + len < addr || !proc.space->is_mapped(addr, len)) {
        return Status(ErrorCode::kFault, "copy_to_user: unmapped");
    }
    if (proc.space->write_raw(addr, in, len) != vm::AccessFault::kNone) {
        return Status(ErrorCode::kFault, "copy_to_user fault");
    }
    return Status();
}

Result<std::string>
Kernel::read_user_string(Process &proc, uint64_t addr, uint64_t len)
{
    if (len > 65536) {
        return Error(ErrorCode::kNameTooLong, "string too long");
    }
    std::string out(len, '\0');
    OCC_RETURN_IF_ERROR(copy_from_user(proc, addr, out.data(), len));
    return out;
}

Result<std::string>
Kernel::read_user_cstring(Process &proc, uint64_t addr, uint64_t max_len)
{
    // Clamp: a hostile max_len must not become an unbounded kernel
    // loop or allocation (same ceiling as read_user_string; the old
    // code trusted the caller's bound unchecked).
    max_len = std::min<uint64_t>(max_len, 65536);
    std::string out;
    char buf[256];
    uint64_t pos = addr;
    while (out.size() < max_len) {
        // Chunked, never crossing a page boundary in one probe.
        uint64_t chunk = std::min<uint64_t>(
            std::min<uint64_t>(max_len - out.size(), sizeof(buf)),
            vm::kPageSize - (pos & vm::kPageMask));
        if (copy_from_user(proc, pos, buf, chunk).ok()) {
            for (uint64_t i = 0; i < chunk; ++i) {
                if (buf[i] == '\0') {
                    out.append(buf, i);
                    return out;
                }
            }
            out.append(buf, chunk);
            pos += chunk;
            continue;
        }
        // The full chunk is not accessible (region edge, unmapped
        // tail): fall back to byte-at-a-time, which preserves the
        // semantics that bytes past the terminator need not exist.
        for (uint64_t i = 0; i < chunk && out.size() < max_len; ++i) {
            char c = 0;
            OCC_RETURN_IF_ERROR(copy_from_user(proc, pos + i, &c, 1));
            if (c == '\0') {
                return out;
            }
            out.push_back(c);
        }
        pos += chunk;
    }
    return Error(ErrorCode::kNameTooLong, "unterminated string");
}

// ---------------------------------------------------------------------
// process lifecycle
// ---------------------------------------------------------------------

Result<int>
Kernel::spawn(const std::string &path, const std::vector<std::string> &argv,
              int parent_pid, const std::array<int64_t, 3> *stdio_fds)
{
    auto created = create_process(path, argv);
    if (!created.ok()) {
        return created.error();
    }
    std::unique_ptr<Process> proc = created.take();
    proc->pid = next_pid_++;
    proc->argv = argv;

    // stdio: inherit from the parent per the fd map, else console.
    Process *parent = nullptr;
    if (parent_pid >= 0) {
        auto it = procs_.find(parent_pid);
        if (it != procs_.end()) {
            parent = it->second.get();
        }
    }
    auto console = std::make_shared<Console>(&console_);
    for (int i = 0; i < 3; ++i) {
        FilePtr file;
        int64_t mapped = stdio_fds ? (*stdio_fds)[i] : -1;
        if (parent && mapped >= 0) {
            auto fit = parent->fds.find(static_cast<int>(mapped));
            if (fit == parent->fds.end()) {
                return Error(ErrorCode::kBadF, "spawn: bad stdio fd");
            }
            file = fit->second;
        } else if (parent && parent->fds.count(i)) {
            file = parent->fds.at(i);
        } else {
            file = console;
        }
        file->on_fd_acquire();
        proc->fds[i] = std::move(file);
    }

    int pid = proc->pid;
    // Fixed home-core rule: pid % cores, for the process's lifetime.
    proc->home_core = pid % num_cores_;
    // Expose the pid through the PCB if the personality mapped one.
    if (proc->d_begin != 0) {
        uint64_t pid64 = static_cast<uint64_t>(pid);
        proc->space->write_raw(proc->d_begin + abi::kPcbPid, &pid64, 8);
    }
    run_queues_[proc->home_core].insert(pid);
    procs_.emplace(pid, std::move(proc));
    ++stats_.spawns;
    ctr_spawns_->add();
    OCC_TRACE_INSTANT(kSched, "proc.spawn",
                      static_cast<uint64_t>(pid));
    any_progress_ = true;
    return pid;
}

void
Kernel::kill_process(Process &proc, DeathCause cause, int64_t code)
{
    if (proc.state == ProcState::kDead) {
        return;
    }
    proc.state = ProcState::kDead;
    proc.death = cause;
    proc.exit_code = code;
    detach_waits(proc);
    if (proc.wake_time != ~0ull && !proc.wake_pending) {
        ++timer_dead_; // the armed heap entry just went stale
    }
    proc.wake_pending = false;
    proc.wake_time = ~0ull; // invalidates any armed timers
    home_queue(proc).erase(proc.pid);
    // Release fds so pipe peers see EOF / EPIPE (the release hooks
    // wake any peers blocked on the other end).
    for (auto &[fd, file] : proc.fds) {
        file->on_fd_release(*this);
    }
    proc.fds.clear();
    proc.epolls.clear();
    proc.fd_scan_hint = 0;
    // Wake waitpid() callers parked on this pid.
    auto wit = pid_waiters_.find(proc.pid);
    if (wit != pid_waiters_.end()) {
        wake_queue(wit->second, clock_->cycles());
        pid_waiters_.erase(wit);
    }

    DeathRecord record;
    record.cause = cause;
    record.code = code;
    record.fault = proc.last_fault;
    record.fault_addr = proc.last_fault_addr;
    reaped_[proc.pid] = record;
    if (cause == DeathCause::kFault || cause == DeathCause::kPrivileged) {
        ++stats_.faults;
        ctr_faults_->add();
    }
    OCC_TRACE_INSTANT(kSched, "proc.death",
                      static_cast<uint64_t>(proc.pid));
    death_order_.push_back(proc.pid);
    destroy_process(proc);
    any_progress_ = true;
}

Result<int64_t>
Kernel::exit_code(int pid) const
{
    auto it = reaped_.find(pid);
    if (it == reaped_.end()) {
        return Error(ErrorCode::kSrch, "pid not dead/known");
    }
    return it->second.code;
}

Result<DeathRecord>
Kernel::death_record(int pid) const
{
    auto it = reaped_.find(pid);
    if (it == reaped_.end()) {
        return Error(ErrorCode::kSrch, "pid not dead/known");
    }
    return it->second;
}

const Process *
Kernel::find_process(int pid) const
{
    auto it = procs_.find(pid);
    if (it == procs_.end() || it->second->state == ProcState::kDead) {
        return nullptr;
    }
    return it->second.get();
}

bool
Kernel::all_exited() const
{
    for (const auto &[pid, proc] : procs_) {
        if (proc->state != ProcState::kDead) {
            return false;
        }
    }
    return true;
}

uint64_t
Kernel::next_wake_time() const
{
    // Heap peek with lazy pruning, replacing the O(procs) scan over
    // every blocked process. An entry is live iff its pid is still
    // blocked, not already wake-pending, and its wake_time matches.
    while (!timers_.empty()) {
        auto [when, pid] = timers_.front();
        if (timer_entry_live(when, pid)) {
            return when;
        }
        timer_pop();
    }
    return ~0ull;
}

// ---------------------------------------------------------------------
// timer heap
// ---------------------------------------------------------------------

bool
Kernel::timer_entry_live(uint64_t when, int pid) const
{
    auto it = procs_.find(pid);
    if (it == procs_.end()) {
        return false;
    }
    const Process &proc = *it->second;
    return proc.state == ProcState::kBlocked && !proc.wake_pending &&
           proc.wake_time == when;
}

void
Kernel::timer_push(uint64_t when, int pid) const
{
    timers_.emplace_back(when, pid);
    std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
}

void
Kernel::timer_pop() const
{
    // Popping the top only ever removes a stale entry here or a
    // just-consumed one in fire_due_timers; either way the entry no
    // longer counts toward the dead backlog.
    if (!timer_entry_live(timers_.front().first,
                          timers_.front().second) &&
        timer_dead_ > 0) {
        --timer_dead_;
    }
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>());
    timers_.pop_back();
}

void
Kernel::compact_timers_if_worthwhile() const
{
    // Opportunistic compaction: once stale entries are both numerous
    // and the majority, rebuild the heap from the live ones. Without
    // this, a timeout re-armed and cancelled in a loop (poll with a
    // far deadline, woken early by data, every iteration) leaks one
    // far-future entry per iteration: it never reaches the top, so
    // lazy pruning never sees it. Compaction only drops entries the
    // liveness predicate already ignores, so wake order, cycle
    // streams, and BENCH output are untouched.
    constexpr size_t kMinDead = 64;
    if (timer_dead_ < kMinDead || timer_dead_ * 2 < timers_.size()) {
        return;
    }
    std::erase_if(timers_, [this](const std::pair<uint64_t, int> &e) {
        return !timer_entry_live(e.first, e.second);
    });
    std::make_heap(timers_.begin(), timers_.end(), std::greater<>());
    timer_dead_ = 0;
}

// ---------------------------------------------------------------------
// wait queues and wakeups
// ---------------------------------------------------------------------

Kernel::~Kernel()
{
    // Detach every process from every wait queue while both sides are
    // still alive; plain member destruction would otherwise have
    // queue destructors chasing back-pointers into freed processes.
    for (auto &[pid, proc] : procs_) {
        detach_waits(*proc);
    }
    if (net_) {
        net_->set_events({});
    }
}

void
Kernel::install_net_events()
{
    if (!net_) {
        return;
    }
    host::NetSim::Events events;
    events.on_data = [this](host::NetSim::Connection *conn,
                            bool to_server, uint64_t when) {
        auto it = socket_registry_.find({conn, to_server});
        if (it != socket_registry_.end()) {
            wake_queue(it->second->read_waiters(), when);
        }
    };
    events.on_connect = [this](uint16_t port, uint64_t when) {
        auto it = listener_registry_.find(port);
        if (it != listener_registry_.end()) {
            wake_queue(it->second->read_waiters(), when);
        }
    };
    events.on_close = [this](host::NetSim::Connection *conn,
                             bool closed_by_server) {
        // The side still open sees EOF (and EPIPE on write) now.
        auto it = socket_registry_.find({conn, !closed_by_server});
        if (it != socket_registry_.end()) {
            uint64_t now = clock_->cycles();
            wake_queue(it->second->read_waiters(), now);
            wake_queue(it->second->write_waiters(), now);
        }
    };
    net_->set_events(std::move(events));
}

void
Kernel::register_socket(host::NetSim::Connection *conn, bool at_server,
                        FileObject *file)
{
    socket_registry_[{conn, at_server}] = file;
}

void
Kernel::socket_closed(host::NetSim::Connection *conn, bool at_server)
{
    socket_registry_.erase({conn, at_server});
}

void
Kernel::listener_closed(uint16_t port)
{
    listener_registry_.erase(port);
}

void
Kernel::detach_waits(Process &proc)
{
    for (WaitQueue *queue : proc.waiting_on) {
        queue->remove(&proc);
    }
    proc.waiting_on.clear();
}

void
Kernel::mark_wake_pending(Process &proc)
{
    if (proc.state != ProcState::kBlocked || proc.wake_pending) {
        return;
    }
    detach_waits(proc);
    proc.wake_pending = true;
    // Invalidate any armed timers (the heap's lazy deletion keys off
    // wake_time matching the entry).
    if (proc.wake_time != ~0ull) {
        ++timer_dead_;
    }
    proc.wake_time = ~0ull;
    // The woken pid lands on its home core's queue — wakeups cross
    // cores with no routing decision because membership is by home.
    home_queue(proc).insert(proc.pid);
    ctr_wakeups_->add();
    if (num_cores_ > 1) {
        core_ctrs_[proc.home_core].wakeups->add();
    }
    OCC_TRACE_INSTANT(kSched, "sched.wake",
                      static_cast<uint64_t>(proc.pid));
}

void
Kernel::wake_process(Process &proc)
{
    mark_wake_pending(proc);
}

void
Kernel::arm_timer(Process &proc, uint64_t when)
{
    if (when >= proc.wake_time) {
        return; // no timer, or an earlier one is already armed
    }
    if (proc.wake_time != ~0ull) {
        ++timer_dead_; // the superseded entry just went stale
    }
    proc.wake_time = when;
    timer_push(when, proc.pid);
    compact_timers_if_worthwhile();
}

void
Kernel::notify_watches(WaitQueue &queue, uint64_t when)
{
    // Copy: on_source_event recursively wake_queue()s the epoll's own
    // read waiters, and a parent epoll watching that queue may mutate
    // its watch list while we iterate.
    std::vector<EpollWatch *> watches = queue.watches();
    for (EpollWatch *watch : watches) {
        watch->epoll->on_source_event(*this, watch->fd, when);
    }
}

void
Kernel::wake_queue(WaitQueue &queue, uint64_t when)
{
    // Epoll subscriptions ride every notification a queue would
    // deliver to waiters: the event moves the fd onto the watching
    // epoll's ready list whether or not anyone is blocked right now.
    if (!queue.watches().empty()) {
        notify_watches(queue, when);
    }
    if (queue.empty()) {
        return;
    }
    if (when <= clock_->cycles()) {
        for (Process *proc : queue.take()) {
            mark_wake_pending(*proc);
        }
        return;
    }
    // Future event (in-flight network data): arm timers but leave the
    // waiters queued, so an earlier event can still wake them.
    for (Process *proc : queue.peek()) {
        arm_timer(*proc, when);
    }
}

void
Kernel::fire_due_timers()
{
    uint64_t now = clock_->cycles();
    while (!timers_.empty() && timers_.front().first <= now) {
        auto [when, pid] = timers_.front();
        bool live = timer_entry_live(when, pid);
        timer_pop();
        if (live) {
            // The entry is consumed with the pop, so clear wake_time
            // first — mark_wake_pending would otherwise count it as
            // a stale entry still sitting in the heap.
            Process &proc = *procs_.find(pid)->second;
            proc.wake_time = ~0ull;
            mark_wake_pending(proc);
        }
    }
}

std::optional<int64_t>
Kernel::block_on(Process &proc, uint64_t wake,
                 const std::vector<WaitQueue *> &queues)
{
    for (WaitQueue *queue : queues) {
        if (std::find(proc.waiting_on.begin(), proc.waiting_on.end(),
                      queue) == proc.waiting_on.end()) {
            queue->add(&proc);
            proc.waiting_on.push_back(queue);
        }
    }
    arm_timer(proc, wake);
    // Off the scheduling walk until an explicit wakeup: this is the
    // whole point — an idle connection costs zero dispatches.
    home_queue(proc).erase(proc.pid);
    return std::nullopt;
}

// ---------------------------------------------------------------------
// scheduler
// ---------------------------------------------------------------------

vm::CpuExit
Kernel::run_user_quantum(Process &proc)
{
    uint64_t period = faultsim::FaultSim::instance().aex_period();
    if (period == 0) {
        // Idle path: must stay literally the pre-faultsim code so the
        // simulated cycle stream is bit-identical when no plan is set.
        return proc.cpu->run(quantum_);
    }
    // AEX storm armed: slice the quantum at injected-AEX boundaries.
    // The interpreter charges per instruction, so the slicing itself
    // is invisible in the cycle stream — only on_injected_aex() (SSA
    // save/restore + AEX/ERESUME transition costs) adds cycles. Each
    // core keeps its own countdown: an AEX interrupts one hardware
    // thread, not the whole package.
    uint64_t &countdown = aex_countdown_[current_core_];
    if (countdown == 0) {
        countdown = period;
    }
    uint64_t budget = quantum_;
    vm::CpuExit exit;
    for (;;) {
        uint64_t slice = std::min(budget, countdown);
        uint64_t before = proc.cpu->instructions();
        exit = proc.cpu->run(slice);
        uint64_t ran = proc.cpu->instructions() - before;
        budget -= std::min(budget, ran);
        countdown -= std::min(countdown, ran);
        if (countdown == 0) {
            on_injected_aex(proc);
            // Consume a pending aex_at one-shot (the ordinal has
            // passed even when on_injected_aex is a no-op, as in the
            // Linux baseline) and re-read the period: after the
            // one-shot the periodic storm (if any) takes over.
            faultsim::FaultSim::instance().mark_injected_aex();
            period = faultsim::FaultSim::instance().aex_period();
            if (proc.state == ProcState::kDead) {
                return exit;
            }
            if (period == 0) {
                // One-shot consumed, no storm behind it: finish the
                // quantum unsliced.
                if (exit.kind != vm::ExitKind::kInstrBudget ||
                    budget == 0) {
                    return exit;
                }
                return proc.cpu->run(budget);
            }
            countdown = period;
        }
        if (exit.kind != vm::ExitKind::kInstrBudget || budget == 0) {
            return exit;
        }
    }
}

void
Kernel::run_one_quantum(Process &proc)
{
    ctr_sched_visits_->add();
    // Runnable: execute a quantum. The span covers the charge so
    // its duration equals the cycles the SIP's code consumed.
    uint64_t before_cycles = proc.cpu->cycles();
    uint64_t before_instrs = proc.cpu->instructions();
    vm::CpuExit exit;
    {
        OCC_TRACE_SPAN(kVm, "cpu.quantum",
                       static_cast<uint64_t>(proc.pid));
        exit = run_user_quantum(proc);
        charge(proc.cpu->cycles() - before_cycles);
    }
    stats_.user_instructions +=
        proc.cpu->instructions() - before_instrs;
    if (proc.cpu->instructions() != before_instrs) {
        any_progress_ = true;
    }

    switch (exit.kind) {
      case vm::ExitKind::kInstrBudget:
        break;
      case vm::ExitKind::kLtrap: {
        // Pop the return address pushed by the user's call into
        // the trampoline and validate it (paper §6).
        uint64_t ret = 0;
        uint64_t sp = proc.cpu->sp();
        if (proc.space->read_raw(sp, &ret, 8) !=
            vm::AccessFault::kNone) {
            proc.last_fault = vm::FaultKind::kPageFault;
            proc.last_fault_addr = sp;
            kill_process(proc, DeathCause::kFault, -1);
            break;
        }
        proc.cpu->set_sp(sp + 8);
        Status valid = validate_syscall_return(proc, ret);
        if (!valid.ok()) {
            proc.last_fault = vm::FaultKind::kBoundRange;
            proc.last_fault_addr = ret;
            kill_process(proc, DeathCause::kFault, -1);
            break;
        }
        proc.in_syscall = true;
        proc.sys_num = proc.cpu->reg(0);
        for (int i = 0; i < abi::kSyscallArgs; ++i) {
            proc.sys_args[i] = proc.cpu->reg(1 + i);
        }
        proc.sys_ret_addr = ret;
        proc.sys_deadline = ~0ull; // computed by timed syscalls
        ++stats_.syscalls;
        ctr_syscalls_->add();
        uint64_t sys_begin = clock_->cycles();
        {
            OCC_TRACE_SPAN(kLibos, abi::sys_name(proc.sys_num),
                           static_cast<uint64_t>(proc.pid));
            charge(syscall_cost());
            handle_syscall(proc);
        }
        // Cycles of the initial dispatch round (blocked retries
        // are traced but not re-recorded here).
        hist_syscall_cycles_->record(clock_->cycles() - sys_begin);
        break;
      }
      case vm::ExitKind::kPrivileged:
        proc.last_fault = vm::FaultKind::kInvalidInstr;
        proc.last_fault_addr = exit.rip;
        kill_process(proc, DeathCause::kPrivileged, -2);
        break;
      case vm::ExitKind::kFault:
        proc.last_fault = exit.fault;
        proc.last_fault_addr = exit.fault_addr;
        kill_process(proc, DeathCause::kFault, -1);
        break;
    }
}

bool
Kernel::step_round()
{
    return num_cores_ == 1 ? step_round_uni() : step_round_smp();
}

bool
Kernel::step_round_uni()
{
    OCC_TRACE_SPAN(kSched, "sched.round");
    any_progress_ = false;
    fire_due_timers();
    // The walk visits runnable and wake-pending pids in ascending
    // order. A woken process is dispatched at exactly the walk slot
    // where the old retry-polling scheduler's retry would have
    // succeeded (failed retries charged zero cycles), so the
    // simulated cycle stream is unchanged. Processes spawned during
    // the round first run next round, as they did when the walk
    // iterated a pid snapshot taken at round start. (Spawns cannot
    // land *below* the resume cursor: pids are strictly monotonic,
    // so every new pid is above last_existing_pid — the SMP walk
    // keeps the same rule via its round-start snapshot.)
    std::set<int> &run_queue_ = run_queues_[0];
    const int last_existing_pid = next_pid_ - 1;
    int last = 0; // pids start at 1
    for (;;) {
        auto rit = run_queue_.upper_bound(last);
        if (rit == run_queue_.end() || *rit > last_existing_pid) {
            break;
        }
        int pid = *rit;
        last = pid;
        auto it = procs_.find(pid);
        if (it == procs_.end()) {
            run_queue_.erase(pid);
            continue;
        }
        Process &proc = *it->second;
        if (proc.state == ProcState::kDead) {
            run_queue_.erase(pid);
            continue;
        }
        if (proc.state == ProcState::kBlocked) {
            if (!proc.wake_pending) {
                // Stale entry (the process blocked after joining the
                // walk); it leaves until an explicit wakeup.
                run_queue_.erase(pid);
                continue;
            }
            proc.wake_pending = false;
            ctr_sched_visits_->add();
            // Retry the in-flight syscall.
            {
                OCC_TRACE_SPAN(kLibos, abi::sys_name(proc.sys_num),
                               static_cast<uint64_t>(pid));
                if (handle_syscall(proc)) {
                    any_progress_ = true;
                } else {
                    ctr_wasted_retries_->add();
                }
            }
            fire_due_timers();
            continue;
        }
        run_one_quantum(proc);
        // Quanta advance the clock; timers that came due mid-round
        // wake their processes before the walk reaches their pid, the
        // same slot the old per-round retry would have succeeded at.
        fire_due_timers();
    }
    return any_progress_;
}

// ---------------------------------------------------------------------
// SMP scheduling (cores > 1)
// ---------------------------------------------------------------------

void
Kernel::set_cores(int cores)
{
    cores = std::max(1, std::min(cores, 64));
    if (cores == num_cores_) {
        return;
    }
    // Home cores are fixed at spawn; changing the modulus after any
    // spawn would strand pids on queues that no longer exist (or
    // violate the home-core invariant), so the topology is only
    // configurable on an empty process table.
    OCC_CHECK_MSG(procs_.empty() && next_pid_ == 1,
                  "set_cores must run before the first spawn");
    num_cores_ = cores;
    run_queues_.assign(static_cast<size_t>(cores), {});
    core_rotor_.assign(static_cast<size_t>(cores), 0);
    aex_countdown_.assign(static_cast<size_t>(cores), 0);
    core_ctrs_.clear();
    if (cores > 1) {
        // Per-core metrics exist only in SMP mode, so a cores=1 run
        // registers exactly the counters it always has (benches that
        // dump the registry stay bit-identical).
        for (int c = 0; c < cores; ++c) {
            std::string prefix = "kernel.core" + std::to_string(c);
            CoreCounters ctrs;
            ctrs.quanta = &trace::Registry::instance().counter(
                prefix + ".quanta");
            ctrs.steals = &trace::Registry::instance().counter(
                prefix + ".steals");
            ctrs.wakeups = &trace::Registry::instance().counter(
                prefix + ".wakeups");
            core_ctrs_.push_back(ctrs);
        }
    }
}

void
Kernel::smp_drain_wake_pending(int core, int cap)
{
    // Snapshot first: a successful retry can wake further pids onto
    // this queue (they run next round) or kill entries outright.
    std::vector<int> pending;
    std::set<int> &queue = run_queues_[core];
    for (auto it = queue.begin(); it != queue.end() && *it <= cap;) {
        auto pit = procs_.find(*it);
        if (pit == procs_.end() ||
            pit->second->state == ProcState::kDead) {
            it = queue.erase(it);
            continue;
        }
        if (pit->second->state == ProcState::kBlocked &&
            pit->second->wake_pending) {
            pending.push_back(*it);
        }
        ++it;
    }
    for (int pid : pending) {
        auto it = procs_.find(pid);
        if (it == procs_.end()) {
            run_queues_[core].erase(pid);
            continue;
        }
        Process &proc = *it->second;
        if (proc.state != ProcState::kBlocked || !proc.wake_pending) {
            continue; // state changed under an earlier retry
        }
        if (proc.ran_round == round_seq_) {
            // Stolen-then-woken hazard: an idle core stole this SIP
            // earlier in the round, its quantum blocked in a syscall,
            // and a later core's quantum woke it. Retrying now would
            // complete the syscall on the home core's timeline —
            // which rewound to the round start — so the SIP would
            // effectively run twice in one round, overlapping its own
            // stolen quantum in simulated time. Keep wake_pending set
            // and retry next round instead.
            ctr_deferred_retries_->add();
            continue;
        }
        proc.wake_pending = false;
        ctr_sched_visits_->add();
        {
            OCC_TRACE_SPAN(kLibos, abi::sys_name(proc.sys_num),
                           static_cast<uint64_t>(pid));
            if (handle_syscall(proc)) {
                any_progress_ = true;
            } else {
                ctr_wasted_retries_->add();
            }
        }
    }
}

int
Kernel::smp_pick(int core, int cap, bool &stolen)
{
    stolen = false;
    auto eligible = [&](int pid) -> Process * {
        auto it = procs_.find(pid);
        if (it == procs_.end()) {
            return nullptr;
        }
        Process &proc = *it->second;
        if (proc.state != ProcState::kRunnable ||
            proc.ran_round == round_seq_) {
            return nullptr;
        }
        return &proc;
    };
    // Own queue: next eligible pid above the rotor, wrapping once.
    std::set<int> &own = run_queues_[core];
    for (int pass = 0; pass < 2; ++pass) {
        int from = pass == 0 ? core_rotor_[core] : 0;
        for (auto it = own.upper_bound(from);
             it != own.end() && *it <= cap;) {
            int pid = *it;
            auto pit = procs_.find(pid);
            if (pit == procs_.end() ||
                pit->second->state == ProcState::kDead ||
                (pit->second->state == ProcState::kBlocked &&
                 !pit->second->wake_pending)) {
                // Dead or stale entry: drop it from the walk.
                it = own.erase(it);
                continue;
            }
            if (eligible(pid)) {
                core_rotor_[core] = pid;
                return pid;
            }
            ++it;
        }
        if (core_rotor_[core] == 0) {
            break; // the first pass already started at the bottom
        }
    }
    // Idle: deterministic steal. Victim = the most-loaded other core
    // (eligible pids only; ties to the lowest core index), and only
    // when it has at least two eligible pids — taking a lone pid
    // would just migrate work without adding parallelism. The stolen
    // pid is the victim's lowest eligible (it waited longest at the
    // bottom of an over-long queue).
    int victim = -1;
    int victim_count = 1;
    for (int other = 0; other < num_cores_; ++other) {
        if (other == core) {
            continue;
        }
        int count = 0;
        for (int pid : run_queues_[other]) {
            if (pid > cap) {
                break;
            }
            if (eligible(pid)) {
                ++count;
            }
        }
        if (count > victim_count) {
            victim_count = count;
            victim = other;
        }
    }
    if (victim < 0) {
        return -1;
    }
    for (int pid : run_queues_[victim]) {
        if (pid > cap) {
            break;
        }
        if (eligible(pid)) {
            stolen = true;
            return pid;
        }
    }
    return -1;
}

bool
Kernel::step_round_smp()
{
    OCC_TRACE_SPAN(kSched, "sched.round");
    any_progress_ = false;
    fire_due_timers();
    ++round_seq_;
    // Round barrier: every core replays its share of the round from
    // the same start time; the clock then advances to the slowest
    // core's end time. Cores therefore run in parallel in simulated
    // time while the host executes them sequentially in core order —
    // completion order is a pure function of (seed, plan, cores).
    const int cap = next_pid_ - 1; // spawns run next round
    const uint64_t round_start = clock_->cycles();
    uint64_t round_end = round_start;
    for (int core = 0; core < num_cores_; ++core) {
        current_core_ = core;
        clock_->set_cycles(round_start);
        // Phase 1: retry dispatches for woken pids homed here (they
        // charge syscall work to this core's share of the round).
        smp_drain_wake_pending(core, cap);
        // Phase 2: one user quantum — own queue first, else steal.
        bool stolen = false;
        int pid = smp_pick(core, cap, stolen);
        if (pid > 0) {
            Process &proc = *procs_.find(pid)->second;
            proc.ran_round = round_seq_;
            core_ctrs_[core].quanta->add();
            if (stolen) {
                core_ctrs_[core].steals->add();
                OCC_TRACE_INSTANT(kSched, "sched.steal",
                                  static_cast<uint64_t>(pid));
            }
            run_one_quantum(proc);
        }
        round_end = std::max(round_end, clock_->cycles());
    }
    current_core_ = 0;
    clock_->set_cycles(round_end);
    fire_due_timers();
    return any_progress_;
}

void
Kernel::run(bool allow_idle)
{
    while (!all_exited()) {
        if (step_round()) {
            continue;
        }
        uint64_t wake = next_wake_time();
        if (wake != ~0ull && wake > clock_->cycles()) {
            OCC_TRACE_SPAN(kSched, "sched.idle");
            clock_->advance(wake - clock_->cycles());
            continue;
        }
        if (wake == ~0ull) {
            if (allow_idle) {
                return;
            }
            OCC_PANIC("kernel deadlock: all processes blocked forever");
        }
        // wake <= now but no progress: one more round handles it; if
        // this persists the predicates are wrong.
        if (!step_round()) {
            if (allow_idle) {
                return;
            }
            OCC_PANIC("kernel livelock: blocked with stale wake times");
        }
    }
}

// ---------------------------------------------------------------------
// syscalls
// ---------------------------------------------------------------------

bool
Kernel::handle_syscall(Process &proc)
{
    OCC_CHECK(proc.in_syscall);
    std::optional<int64_t> result =
        dispatch(proc, proc.sys_num, proc.sys_args);
    if (proc.state == ProcState::kDead) {
        return true; // exit() or killed during dispatch
    }
    if (!result) {
        proc.state = ProcState::kBlocked;
        return false;
    }
    proc.in_syscall = false;
    proc.state = ProcState::kRunnable;
    if (proc.wake_time != ~0ull) {
        ++timer_dead_; // completion invalidates any armed entry
    }
    proc.wake_time = ~0ull;
    proc.sys_deadline = ~0ull;
    home_queue(proc).insert(proc.pid);
    proc.cpu->set_reg(0, static_cast<uint64_t>(*result));
    proc.cpu->set_rip(proc.sys_ret_addr);
    return true;
}

std::optional<int64_t>
Kernel::dispatch(Process &proc, uint64_t num,
                 const uint64_t args[abi::kSyscallArgs])
{
    auto file_of = [&](uint64_t fd) -> FilePtr {
        auto it = proc.fds.find(static_cast<int>(fd));
        return it == proc.fds.end() ? nullptr : it->second;
    };

    switch (static_cast<Sys>(num)) {
      case Sys::kExit:
        kill_process(proc, DeathCause::kExited,
                     static_cast<int64_t>(args[0]));
        return 0;

      case Sys::kWrite:
      case Sys::kRead:
      case Sys::kSockSend:
      case Sys::kSockRecv: {
        // Hot path: no FilePtr refcount traffic (the fd table entry
        // outlives the call) and a reused kernel bounce buffer
        // instead of a fresh zero-filled allocation per syscall.
        auto it = proc.fds.find(static_cast<int>(args[0]));
        if (it == proc.fds.end()) return neg_errno(ErrorCode::kBadF);
        FileObject *file = it->second.get();
        uint64_t buf = args[1];
        uint64_t len = std::min<uint64_t>(args[2], 1 << 20);
        Sys sys = static_cast<Sys>(num);
        bool is_write = sys == Sys::kWrite || sys == Sys::kSockSend;
        bool is_sock = sys == Sys::kSockSend || sys == Sys::kSockRecv;
        // read()/write() return 0 for len == 0 without touching the
        // file; the socket calls always reach the object (sock_send
        // pays the per-op network cost even for an empty payload).
        if (len == 0 && !is_sock) return 0;
        if (io_scratch_.size() < len) {
            io_scratch_.resize(len);
        }
        uint8_t *tmp = io_scratch_.data();
        if (is_write) {
            if (!copy_from_user(proc, buf, tmp, len).ok()) {
                return neg_errno(ErrorCode::kFault);
            }
            IoResult r = file->write(*this, tmp, len);
            if (r.would_block) {
                return block_on(proc, r.wake_time,
                                {&file->write_waiters()});
            }
            if (r.value == neg_errno(ErrorCode::kPipe) &&
                file->epipe_kills()) {
                // POSIX delivers SIGPIPE here; the default action
                // kills the writer. Returning -EPIPE to a program
                // that retries in a loop used to deadlock run()
                // against allow_idle (the writer never blocks, never
                // exits). Kill with a SIGPIPE-shaped death record.
                // Sockets share this path: a send to a peer-closed
                // connection is the same default-fatal SIGPIPE.
                proc.last_fault = vm::FaultKind::kNone;
                kill_process(proc, DeathCause::kPipe, r.value);
                return r.value;
            }
            return r.value;
        }
        // Probe the destination before reading: pipe/socket reads are
        // destructive, so failing copy_to_user afterwards would
        // silently discard the consumed bytes. write_raw ignores
        // permission bits, so mapped == writable here.
        if (len > 0 &&
            (!validate_user_range(proc, buf, len).ok() ||
             buf + len < buf || !proc.space->is_mapped(buf, len))) {
            return neg_errno(ErrorCode::kFault);
        }
        IoResult r = file->read(*this, tmp, len);
        if (r.would_block) {
            return block_on(proc, r.wake_time,
                            {&file->read_waiters()});
        }
        if (r.value > 0) {
            if (!copy_to_user(proc, buf, tmp,
                              static_cast<uint64_t>(r.value))
                     .ok()) {
                return neg_errno(ErrorCode::kFault);
            }
        }
        return r.value;
      }

      case Sys::kOpen: {
        auto path = read_user_string(proc, args[0], args[1]);
        if (!path.ok()) return neg_errno(path.error().code);
        auto file = fs_open(proc, path.value(), args[2]);
        if (!file.ok()) return neg_errno(file.error().code);
        int fd = proc.alloc_fd();
        file.value()->on_fd_acquire();
        proc.fds[fd] = file.take();
        return fd;
      }

      case Sys::kClose: {
        int fd = static_cast<int>(args[0]);
        auto it = proc.fds.find(fd);
        if (it == proc.fds.end()) return neg_errno(ErrorCode::kBadF);
        FilePtr file = it->second; // keep alive through the hooks
        file->on_fd_release(*this);
        proc.fds.erase(it);
        proc.fd_closed(fd);
        epoll_fd_dropped(proc, fd, file);
        return 0;
      }

      case Sys::kSpawn: {
        auto path = read_user_string(proc, args[0], args[1]);
        if (!path.ok()) return neg_errno(path.error().code);
        uint64_t argv_ptr = args[2];
        uint64_t argc = std::min<uint64_t>(args[3], 32);
        std::vector<std::string> argv;
        for (uint64_t i = 0; i < argc; ++i) {
            uint64_t str_ptr = 0;
            if (!copy_from_user(proc, argv_ptr + 8 * i, &str_ptr, 8)
                     .ok()) {
                return neg_errno(ErrorCode::kFault);
            }
            auto arg = read_user_cstring(proc, str_ptr);
            if (!arg.ok()) return neg_errno(arg.error().code);
            argv.push_back(arg.take());
        }
        if (argv.empty()) {
            argv.push_back(path.value());
        }
        std::array<int64_t, 3> stdio = {-1, -1, -1};
        bool have_stdio = false;
        if (args[4] != 0) {
            int64_t raw[3];
            if (!copy_from_user(proc, args[4], raw, sizeof(raw)).ok()) {
                return neg_errno(ErrorCode::kFault);
            }
            stdio = {raw[0], raw[1], raw[2]};
            have_stdio = true;
        }
        auto pid = this->spawn(path.value(), argv, proc.pid,
                               have_stdio ? &stdio : nullptr);
        if (!pid.ok()) return neg_errno(pid.error().code);
        return pid.value();
      }

      case Sys::kWaitPid: {
        int pid = static_cast<int>(args[0]);
        auto it = reaped_.find(pid);
        if (it != reaped_.end()) {
            return it->second.code;
        }
        if (pid == proc.pid || !procs_.count(pid)) {
            // Self-wait can never be satisfied (the caller would be
            // parked on its own death edge, forever); report "no
            // such child" like an unknown pid.
            return neg_errno(ErrorCode::kChild);
        }
        return block_on(proc, ~0ull, {&pid_waiters_[pid]});
      }

      case Sys::kGetPid:
        return proc.pid;

      case Sys::kPipe: {
        auto pipe = std::make_shared<Pipe>();
        auto read_end = std::make_shared<PipeEnd>(pipe, true);
        auto write_end = std::make_shared<PipeEnd>(pipe, false);
        // Install each end before allocating the next descriptor:
        // alloc_fd() hands out the lowest fd absent from the table,
        // so two back-to-back allocations would alias.
        int rfd = proc.alloc_fd();
        read_end->on_fd_acquire();
        proc.fds[rfd] = read_end;
        int wfd = proc.alloc_fd();
        write_end->on_fd_acquire();
        proc.fds[wfd] = write_end;
        int64_t fds[2] = {rfd, wfd};
        if (!copy_to_user(proc, args[0], fds, sizeof(fds)).ok()) {
            // Linux's do_pipe2 cleanup: a failed copy-out uninstalls
            // both descriptors. Leaving them installed would leak two
            // fds the program never learned the numbers of.
            write_end->on_fd_release(*this);
            proc.fds.erase(wfd);
            read_end->on_fd_release(*this);
            proc.fds.erase(rfd);
            proc.fd_closed(rfd);
            return neg_errno(ErrorCode::kFault);
        }
        return 0;
      }

      case Sys::kDup2: {
        FilePtr file = file_of(args[0]);
        if (!file) return neg_errno(ErrorCode::kBadF);
        int newfd = static_cast<int>(args[1]);
        if (static_cast<int>(args[0]) == newfd) {
            // POSIX: dup2(fd, fd) is a no-op. The release-then-
            // acquire below would transiently drop the last pipe
            // reader/writer, delivering a spurious EOF/EPIPE wake to
            // a blocked peer.
            return newfd;
        }
        auto old = proc.fds.find(newfd);
        if (old != proc.fds.end()) {
            // Implicit close: full kClose discipline minus the
            // fd_closed() hint rewind (the slot is reoccupied on the
            // next line, so everything below the hint stays taken).
            FilePtr doomed = old->second;
            doomed->on_fd_release(*this);
            proc.fds.erase(old);
            epoll_fd_dropped(proc, newfd, doomed);
        }
        file->on_fd_acquire();
        proc.fds[newfd] = file;
        return newfd;
      }

      case Sys::kLseek: {
        FilePtr file = file_of(args[0]);
        if (!file) return neg_errno(ErrorCode::kBadF);
        auto pos = file->seek(static_cast<int64_t>(args[1]),
                              static_cast<int>(args[2]));
        if (!pos.ok()) return neg_errno(pos.error().code);
        return pos.value();
      }

      case Sys::kUnlink: {
        auto path = read_user_string(proc, args[0], args[1]);
        if (!path.ok()) return neg_errno(path.error().code);
        Status status = fs_unlink(path.value());
        return status.ok() ? 0 : neg_errno(status.code());
      }

      case Sys::kMkdir: {
        auto path = read_user_string(proc, args[0], args[1]);
        if (!path.ok()) return neg_errno(path.error().code);
        Status status = fs_mkdir(path.value());
        return status.ok() ? 0 : neg_errno(status.code());
      }

      case Sys::kMmap: {
        // Linux-shaped: mmap(addr, len, prot, flags, fd, off). Only
        // anonymous private RW mappings exist in the model; the addr
        // hint is ignored (mappings come from the per-process bump
        // range). The full 6-register marshalling matters here: off
        // is argument six.
        constexpr uint64_t kMapAnonymous = 0x20;
        uint64_t prot = args[2];
        uint64_t flags = args[3];
        int64_t fd = static_cast<int64_t>(args[4]);
        uint64_t off = args[5];
        if (off & vm::kPageMask) return neg_errno(ErrorCode::kInval);
        if (!(flags & kMapAnonymous) || fd != -1 || off != 0) {
            // File-backed mappings are not part of the model.
            return neg_errno(ErrorCode::kNoSys);
        }
        if (prot & ~static_cast<uint64_t>(vm::kPermRW)) {
            // W^X inside the enclave: PROT_EXEC via mmap would let a
            // SIP forge unverified code pages.
            return neg_errno(ErrorCode::kPerm);
        }
        uint64_t len = (args[1] + vm::kPageMask) & ~vm::kPageMask;
        if (len == 0) return neg_errno(ErrorCode::kInval);
        uint64_t addr = (proc.mmap_cursor + vm::kPageMask) &
                        ~vm::kPageMask;
        if (addr + len > proc.mmap_end) {
            return neg_errno(ErrorCode::kNoMem);
        }
        // Domain/process memory is mapped eagerly at load time (the
        // SGX 1.0 preallocation, paper §6); mmap hands out ranges and
        // zero-fills them.
        if (!proc.space->is_mapped(addr, len)) {
            Status status = proc.space->map(addr, len, vm::kPermRW);
            if (!status.ok()) return neg_errno(status.code());
        } else {
            proc.space->zero_raw(addr, len);
        }
        charge(mmap_zero_cost(len));
        proc.mmap_cursor = addr + len;
        return static_cast<int64_t>(addr);
      }

      case Sys::kMunmap:
        // Bump allocation: a real free list is unnecessary for the
        // workloads; munmap succeeds without reclaiming.
        return 0;

      case Sys::kTime:
        return static_cast<int64_t>(clock_->nanos());

      case Sys::kKill: {
        auto it = procs_.find(static_cast<int>(args[0]));
        if (it == procs_.end() ||
            it->second->state == ProcState::kDead) {
            return neg_errno(ErrorCode::kSrch);
        }
        kill_process(*it->second, DeathCause::kKilled,
                     -static_cast<int64_t>(args[1]));
        return 0;
      }

      case Sys::kYield:
        return 0;

      case Sys::kFstatSize: {
        FilePtr file = file_of(args[0]);
        if (!file) return neg_errno(ErrorCode::kBadF);
        int64_t size = file->size();
        if (size < 0) return neg_errno(ErrorCode::kInval);
        return size;
      }

      case Sys::kFsync: {
        FilePtr file = file_of(args[0]);
        if (!file) return neg_errno(ErrorCode::kBadF);
        Status status = file->fsync(*this);
        return status.ok() ? 0 : neg_errno(status.code());
      }

      case Sys::kSockListen: {
        if (!net_) return neg_errno(ErrorCode::kNoSys);
        uint16_t port = static_cast<uint16_t>(args[0]);
        if (!net_->listen(port, static_cast<int>(args[1]))) {
            return neg_errno(ErrorCode::kBusy);
        }
        int fd = proc.alloc_fd();
        auto listener = std::make_shared<ListenerFile>(net_, port);
        listener->on_fd_acquire();
        proc.fds[fd] = listener;
        listener_registry_[port] = listener.get();
        return fd;
      }

      case Sys::kSockAccept: {
        if (!net_) return neg_errno(ErrorCode::kNoSys);
        FilePtr file = file_of(args[0]);
        auto *listener = dynamic_cast<ListenerFile *>(file.get());
        if (!listener) return neg_errno(ErrorCode::kBadF);
        host::NetSim::Connection *conn =
            net_->try_accept(listener->port(), clock_->cycles());
        if (!conn) {
            return block_on(proc,
                            net_->next_accept_time(listener->port()),
                            {&file->read_waiters()});
        }
        charge(CostModel::kNetAcceptCycles);
        int fd = proc.alloc_fd();
        auto sock = std::make_shared<SocketFile>(net_, conn, true);
        sock->on_fd_acquire();
        proc.fds[fd] = sock;
        register_socket(conn, true, sock.get());
        return fd;
      }

      case Sys::kSockConnect: {
        if (!net_) return neg_errno(ErrorCode::kNoSys);
        auto conn = net_->connect(static_cast<uint16_t>(args[0]));
        if (!conn.ok()) return neg_errno(conn.error().code);
        int fd = proc.alloc_fd();
        auto sock = std::make_shared<SocketFile>(net_, conn.value(),
                                                 false);
        sock->on_fd_acquire();
        proc.fds[fd] = sock;
        register_socket(conn.value(), false, sock.get());
        return fd;
      }

      case Sys::kPoll: {
        // poll(fds, nfds, timeout_ns): fds is an array of records of
        // three int64s {fd, events, revents}. timeout_ns < 0 waits
        // forever, 0 never blocks. The deadline is computed once, at
        // the first dispatch, so blocked retries do not slide it.
        constexpr uint64_t kMaxPollFds = 4096;
        uint64_t fds_ptr = args[0];
        uint64_t nfds = args[1];
        int64_t timeout_ns = static_cast<int64_t>(args[2]);
        if (nfds > kMaxPollFds) return neg_errno(ErrorCode::kInval);
        if (proc.sys_deadline == ~0ull && timeout_ns >= 0) {
            proc.sys_deadline =
                clock_->cycles() +
                static_cast<uint64_t>(static_cast<double>(timeout_ns) *
                                      (SimClock::kFrequencyHz / 1e9));
        }
        uint64_t bytes = nfds * abi::kPollRecordBytes;
        if (io_scratch_.size() < bytes) {
            io_scratch_.resize(bytes);
        }
        if (bytes > 0 &&
            !copy_from_user(proc, fds_ptr, io_scratch_.data(), bytes)
                 .ok()) {
            return neg_errno(ErrorCode::kFault);
        }
        int64_t *rec = reinterpret_cast<int64_t *>(io_scratch_.data());
        int64_t ready = 0;
        uint64_t min_event = ~0ull;
        std::vector<WaitQueue *> queues;
        for (uint64_t i = 0; i < nfds; ++i) {
            int64_t fd = rec[3 * i];
            int64_t events = rec[3 * i + 1];
            int64_t revents = 0;
            if (fd >= 0) { // POSIX: negative fds are skipped
                auto fit = proc.fds.find(static_cast<int>(fd));
                if (fit == proc.fds.end()) {
                    revents = abi::kPollNval;
                } else {
                    FileObject *pf = fit->second.get();
                    uint64_t bits = pf->poll_ready(*this);
                    // POLLERR/POLLHUP are always reported; POLLIN/
                    // POLLOUT only when requested.
                    revents =
                        static_cast<int64_t>(bits) &
                        (events | abi::kPollErr | abi::kPollHup);
                    if (revents == 0) {
                        if (events & abi::kPollIn) {
                            queues.push_back(&pf->read_waiters());
                        }
                        if (events & abi::kPollOut) {
                            queues.push_back(&pf->write_waiters());
                        }
                        min_event = std::min(min_event,
                                             pf->next_event_time(*this));
                    }
                }
            }
            rec[3 * i + 2] = revents;
            if (revents != 0) ++ready;
        }
        uint64_t now = clock_->cycles();
        bool timed_out =
            proc.sys_deadline != ~0ull && now >= proc.sys_deadline;
        if (ready > 0 || timed_out) {
            if (bytes > 0 &&
                !copy_to_user(proc, fds_ptr, rec, bytes).ok()) {
                return neg_errno(ErrorCode::kFault);
            }
            ctr_poll_calls_->add();
            return ready;
        }
        return block_on(proc, std::min(proc.sys_deadline, min_event),
                        queues);
      }

      case Sys::kEpollCreate: {
        int fd = proc.alloc_fd();
        auto ep = std::make_shared<EpollObject>();
        ep->on_fd_acquire();
        proc.fds[fd] = ep;
        proc.epolls.push_back(ep.get());
        return fd;
      }

      case Sys::kEpollCtl: {
        // epoll_ctl(epfd, op, fd, events). Errors follow Linux: EBADF
        // for dead descriptors, EINVAL for a non-epoll epfd, EEXIST /
        // ENOENT / ELOOP from the interest-list operation itself.
        FilePtr epfile = file_of(args[0]);
        if (!epfile) return neg_errno(ErrorCode::kBadF);
        auto *ep = dynamic_cast<EpollObject *>(epfile.get());
        if (!ep) return neg_errno(ErrorCode::kInval);
        int fd = static_cast<int>(args[2]);
        FilePtr target = file_of(args[2]);
        if (!target) return neg_errno(ErrorCode::kBadF);
        uint64_t op = args[1];
        Result<int64_t> r = neg_errno(ErrorCode::kInval);
        if (op == abi::kEpollCtlAdd) {
            r = ep->add(*this, fd, target, args[3]);
        } else if (op == abi::kEpollCtlDel) {
            r = ep->remove(fd);
        } else if (op == abi::kEpollCtlMod) {
            r = ep->modify(*this, fd, args[3]);
        } else {
            return neg_errno(ErrorCode::kInval);
        }
        if (!r.ok()) return neg_errno(r.error().code);
        return r.value();
      }

      case Sys::kEpollWait: {
        // epoll_wait(epfd, events, maxevents, timeout_ns): events is
        // an array of {fd, revents} int64 pairs. Timeout semantics
        // match kPoll (deadline pinned at the first dispatch).
        constexpr uint64_t kMaxEpollEvents = 4096;
        FilePtr epfile = file_of(args[0]);
        if (!epfile) return neg_errno(ErrorCode::kBadF);
        auto *ep = dynamic_cast<EpollObject *>(epfile.get());
        if (!ep) return neg_errno(ErrorCode::kInval);
        uint64_t evs_ptr = args[1];
        uint64_t max_events = args[2];
        int64_t timeout_ns = static_cast<int64_t>(args[3]);
        if (max_events == 0 || max_events > kMaxEpollEvents) {
            return neg_errno(ErrorCode::kInval);
        }
        if (proc.sys_deadline == ~0ull && timeout_ns >= 0) {
            proc.sys_deadline =
                clock_->cycles() +
                static_cast<uint64_t>(static_cast<double>(timeout_ns) *
                                      (SimClock::kFrequencyHz / 1e9));
        }
        uint64_t bytes = max_events * abi::kEpollRecordBytes;
        // All-or-nothing EFAULT *before* collect(): collecting is
        // destructive for edge-triggered entries, so the whole output
        // buffer must be probed before any candidate is consumed
        // (same discipline as the kRead/kSockRecv destination probe).
        if (!validate_user_range(proc, evs_ptr, bytes).ok() ||
            evs_ptr + bytes < evs_ptr ||
            !proc.space->is_mapped(evs_ptr, bytes)) {
            return neg_errno(ErrorCode::kFault);
        }
        if (io_scratch_.size() < bytes) {
            io_scratch_.resize(bytes);
        }
        int64_t *rec = reinterpret_cast<int64_t *>(io_scratch_.data());
        uint64_t min_due = ~0ull;
        int64_t n = ep->collect(*this, rec, max_events, min_due);
        uint64_t now = clock_->cycles();
        bool timed_out =
            proc.sys_deadline != ~0ull && now >= proc.sys_deadline;
        if (n > 0 || timed_out) {
            if (n > 0 &&
                !copy_to_user(proc, evs_ptr, rec,
                              static_cast<uint64_t>(n) *
                                  abi::kEpollRecordBytes)
                     .ok()) {
                return neg_errno(ErrorCode::kFault);
            }
            ctr_epoll_waits_->add();
            return n;
        }
        return block_on(proc, std::min(proc.sys_deadline, min_due),
                        {&ep->read_waiters()});
      }

      case Sys::kGetArg: {
        uint64_t index = args[0];
        if (index >= proc.argv.size()) {
            return neg_errno(ErrorCode::kInval);
        }
        const std::string &arg = proc.argv[index];
        uint64_t cap = args[2];
        uint64_t n = std::min<uint64_t>(arg.size() + 1, cap);
        if (n > 0 &&
            !copy_to_user(proc, args[1], arg.c_str(), n).ok()) {
            return neg_errno(ErrorCode::kFault);
        }
        return static_cast<int64_t>(arg.size());
      }

      case Sys::kCount:
        break;
    }
    return neg_errno(ErrorCode::kNoSys);
}

} // namespace occlum::oskit
