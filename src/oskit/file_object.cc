#include "oskit/file_object.h"

#include "oskit/kernel.h"
#include "trace/trace.h"

namespace occlum::oskit {

// ---------------------------------------------------------------------
// PipeEnd
// ---------------------------------------------------------------------

void
PipeEnd::on_fd_acquire()
{
    if (read_end_) {
        ++pipe_->readers;
    } else {
        ++pipe_->writers;
    }
}

void
PipeEnd::on_fd_release(Kernel &kernel)
{
    (void)kernel;
    if (read_end_) {
        --pipe_->readers;
    } else {
        --pipe_->writers;
    }
}

IoResult
PipeEnd::read(Kernel &kernel, uint8_t *buf, uint64_t len)
{
    if (!read_end_) {
        return IoResult::err(ErrorCode::kBadF);
    }
    if (pipe_->buffer.empty()) {
        if (pipe_->writers == 0) {
            return IoResult::ok(0); // EOF
        }
        return IoResult::block();
    }
    uint64_t n = std::min<uint64_t>(len, pipe_->buffer.size());
    for (uint64_t i = 0; i < n; ++i) {
        buf[i] = pipe_->buffer.front();
        pipe_->buffer.pop_front();
    }
    kernel.charge(kernel.pipe_op_cost() +
                  static_cast<uint64_t>(n * kernel.pipe_byte_cost()));
    return IoResult::ok(static_cast<int64_t>(n));
}

IoResult
PipeEnd::write(Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    if (read_end_) {
        return IoResult::err(ErrorCode::kBadF);
    }
    if (pipe_->readers == 0) {
        return IoResult::err(ErrorCode::kPipe);
    }
    uint64_t room = Pipe::kCapacity - pipe_->buffer.size();
    if (room == 0) {
        return IoResult::block();
    }
    uint64_t n = std::min<uint64_t>(len, room);
    pipe_->buffer.insert(pipe_->buffer.end(), buf, buf + n);
    kernel.charge(kernel.pipe_op_cost() +
                  static_cast<uint64_t>(n * kernel.pipe_byte_cost()));
    return IoResult::ok(static_cast<int64_t>(n));
}

// ---------------------------------------------------------------------
// SocketFile
// ---------------------------------------------------------------------

IoResult
SocketFile::read(Kernel &kernel, uint8_t *buf, uint64_t len)
{
    uint64_t next_arrival = ~0ull;
    size_t n = net_->recv(conn_, at_server_, buf, len,
                          kernel.clock().cycles(), next_arrival);
    if (n == 0) {
        if (net_->is_drained(conn_, at_server_,
                             kernel.clock().cycles())) {
            return IoResult::ok(0); // peer closed, EOF
        }
        return IoResult::block(next_arrival);
    }
    {
        OCC_TRACE_SPAN(kOcall, "net.recv", n);
        kernel.charge(kernel.net_op_cost() +
                      static_cast<uint64_t>(
                          n * CostModel::kMemcpyCyclesPerByte));
    }
    return IoResult::ok(static_cast<int64_t>(n));
}

IoResult
SocketFile::write(Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    net_->send(conn_, at_server_, buf, len);
    {
        OCC_TRACE_SPAN(kOcall, "net.send", len);
        kernel.charge(kernel.net_op_cost() +
                      static_cast<uint64_t>(
                          len * CostModel::kMemcpyCyclesPerByte));
    }
    return IoResult::ok(static_cast<int64_t>(len));
}

void
SocketFile::on_fd_release(Kernel &kernel)
{
    (void)kernel;
    net_->close(conn_, at_server_);
}

} // namespace occlum::oskit
