#include "oskit/file_object.h"

#include <algorithm>
#include <utility>

#include "oskit/kernel.h"
#include "trace/trace.h"

namespace occlum::oskit {

// ---------------------------------------------------------------------
// WaitQueue
// ---------------------------------------------------------------------

WaitQueue::~WaitQueue()
{
    // Normally empty by now (a blocked process keeps every object it
    // waits on alive through its own fd table, and Kernel teardown
    // detaches survivors); clean up back-pointers if not.
    for (Process *proc : waiters_) {
        auto &w = proc->waiting_on;
        w.erase(std::remove(w.begin(), w.end(), this), w.end());
    }
}

void
WaitQueue::add(Process *proc)
{
    if (std::find(waiters_.begin(), waiters_.end(), proc) ==
        waiters_.end()) {
        waiters_.push_back(proc);
    }
}

void
WaitQueue::remove(Process *proc)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), proc),
                   waiters_.end());
}

std::vector<Process *>
WaitQueue::take()
{
    return std::exchange(waiters_, {});
}

void
WaitQueue::add_watch(EpollWatch *watch)
{
    if (std::find(watches_.begin(), watches_.end(), watch) ==
        watches_.end()) {
        watches_.push_back(watch);
    }
}

void
WaitQueue::remove_watch(EpollWatch *watch)
{
    watches_.erase(
        std::remove(watches_.begin(), watches_.end(), watch),
        watches_.end());
}

// ---------------------------------------------------------------------
// PipeEnd
// ---------------------------------------------------------------------

void
PipeEnd::on_fd_acquire()
{
    if (read_end_) {
        ++pipe_->readers;
    } else {
        ++pipe_->writers;
    }
}

void
PipeEnd::on_fd_release(Kernel &kernel)
{
    if (read_end_) {
        if (--pipe_->readers == 0) {
            // Last reader gone: blocked writers must learn they will
            // never drain the pipe (EPIPE, SIGPIPE-shaped death).
            kernel.wake_queue(pipe_->write_waiters,
                              kernel.clock().cycles());
        }
    } else {
        if (--pipe_->writers == 0) {
            // Last writer gone: blocked readers see EOF.
            kernel.wake_queue(pipe_->read_waiters,
                              kernel.clock().cycles());
        }
    }
}

IoResult
PipeEnd::read(Kernel &kernel, uint8_t *buf, uint64_t len)
{
    if (!read_end_) {
        return IoResult::err(ErrorCode::kBadF);
    }
    if (pipe_->buffer.empty()) {
        if (pipe_->writers == 0) {
            return IoResult::ok(0); // EOF
        }
        return IoResult::block();
    }
    uint64_t n = std::min<uint64_t>(len, pipe_->buffer.size());
    for (uint64_t i = 0; i < n; ++i) {
        buf[i] = pipe_->buffer.front();
        pipe_->buffer.pop_front();
    }
    kernel.charge(kernel.pipe_op_cost() +
                  static_cast<uint64_t>(n * kernel.pipe_byte_cost()));
    if (n > 0) {
        // Freed capacity: wake writers blocked on a full pipe.
        kernel.wake_queue(pipe_->write_waiters, kernel.clock().cycles());
    }
    return IoResult::ok(static_cast<int64_t>(n));
}

IoResult
PipeEnd::write(Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    if (read_end_) {
        return IoResult::err(ErrorCode::kBadF);
    }
    if (pipe_->readers == 0) {
        return IoResult::err(ErrorCode::kPipe);
    }
    uint64_t room = Pipe::kCapacity - pipe_->buffer.size();
    if (room == 0) {
        return IoResult::block();
    }
    uint64_t n = std::min<uint64_t>(len, room);
    pipe_->buffer.insert(pipe_->buffer.end(), buf, buf + n);
    kernel.charge(kernel.pipe_op_cost() +
                  static_cast<uint64_t>(n * kernel.pipe_byte_cost()));
    if (n > 0) {
        kernel.wake_queue(pipe_->read_waiters, kernel.clock().cycles());
    }
    return IoResult::ok(static_cast<int64_t>(n));
}

uint64_t
PipeEnd::poll_ready(Kernel &kernel)
{
    (void)kernel;
    uint64_t bits = 0;
    if (read_end_) {
        if (!pipe_->buffer.empty()) {
            bits |= static_cast<uint64_t>(abi::kPollIn);
        }
        if (pipe_->writers == 0) {
            // Writer gone is a hangup, not data: POLLIN here used to
            // send pollers into a 0-byte read loop on a drained pipe.
            // HUP is always reported, so the poller still wakes; the
            // read then sees a clean EOF.
            bits |= static_cast<uint64_t>(abi::kPollHup);
        }
    } else {
        if (pipe_->readers == 0) {
            bits |= static_cast<uint64_t>(abi::kPollErr);
        } else if (pipe_->can_write()) {
            bits |= static_cast<uint64_t>(abi::kPollOut);
        }
    }
    return bits;
}

// ---------------------------------------------------------------------
// SocketFile
// ---------------------------------------------------------------------

IoResult
SocketFile::read(Kernel &kernel, uint8_t *buf, uint64_t len)
{
    uint64_t next_arrival = ~0ull;
    size_t n = net_->recv(conn_, at_server_, buf, len,
                          kernel.clock().cycles(), next_arrival);
    if (n == 0) {
        if (net_->is_drained(conn_, at_server_,
                             kernel.clock().cycles())) {
            return IoResult::ok(0); // peer closed, EOF
        }
        return IoResult::block(next_arrival);
    }
    {
        OCC_TRACE_SPAN(kOcall, "net.recv", n);
        kernel.charge(kernel.net_op_cost() +
                      static_cast<uint64_t>(
                          n * CostModel::kMemcpyCyclesPerByte));
    }
    return IoResult::ok(static_cast<int64_t>(n));
}

IoResult
SocketFile::write(Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    bool peer_open =
        at_server_ ? conn_->open_client : conn_->open_server;
    if (!peer_open) {
        // Same default-fatal SIGPIPE shape as pipes (the kernel's
        // epipe_kills() path); a send into a closed connection used
        // to succeed silently.
        return IoResult::err(ErrorCode::kPipe);
    }
    net_->send(conn_, at_server_, buf, len);
    {
        OCC_TRACE_SPAN(kOcall, "net.send", len);
        kernel.charge(kernel.net_op_cost() +
                      static_cast<uint64_t>(
                          len * CostModel::kMemcpyCyclesPerByte));
    }
    return IoResult::ok(static_cast<int64_t>(len));
}

void
SocketFile::on_fd_release(Kernel &kernel)
{
    // A socket shared through fd inheritance (spawn stdio) must only
    // close the connection when the *last* descriptor goes away.
    // Closing on the first release tore the socket out of the wakeup
    // registry while another SIP still held a live fd: a poller
    // blocked on the surviving descriptor never saw later data.
    if (--fd_refs_ == 0) {
        net_->close(conn_, at_server_); // fires on_close → wakes peer
        kernel.socket_closed(conn_, at_server_);
    }
}

uint64_t
SocketFile::poll_ready(Kernel &kernel)
{
    uint64_t now = kernel.clock().cycles();
    uint64_t bits = 0;
    bool peer_open =
        at_server_ ? conn_->open_client : conn_->open_server;
    if (peer_open) {
        bits |= static_cast<uint64_t>(abi::kPollOut);
    } else {
        bits |= static_cast<uint64_t>(abi::kPollHup);
    }
    if (net_->readable_now(conn_, at_server_, now)) {
        bits |= static_cast<uint64_t>(abi::kPollIn);
    } else if (net_->is_drained(conn_, at_server_, now)) {
        bits |= static_cast<uint64_t>(abi::kPollIn); // EOF readable
    }
    return bits;
}

uint64_t
SocketFile::next_event_time(Kernel &kernel)
{
    (void)kernel;
    return net_->next_arrival_time(conn_, at_server_);
}

// ---------------------------------------------------------------------
// ListenerFile
// ---------------------------------------------------------------------

void
ListenerFile::on_fd_release(Kernel &kernel)
{
    // The listener is shared across master and workers through fd
    // inheritance; only the last close unregisters the port.
    if (--fd_refs_ == 0) {
        kernel.listener_closed(port_);
    }
}

uint64_t
ListenerFile::poll_ready(Kernel &kernel)
{
    return net_->next_accept_time(port_) <= kernel.clock().cycles()
               ? static_cast<uint64_t>(abi::kPollIn)
               : 0;
}

uint64_t
ListenerFile::next_event_time(Kernel &kernel)
{
    (void)kernel;
    return net_->next_accept_time(port_);
}

} // namespace occlum::oskit
