/**
 * @file
 * File-descriptor objects shared by every OS personality: pipes,
 * console, sockets. Personalities add their own file-system backed
 * objects (plain host files for the Linux model, encrypted-FS files
 * for Occlum, protected read-only files for the EIP baseline).
 */
#ifndef OCCLUM_OSKIT_FILE_OBJECT_H
#define OCCLUM_OSKIT_FILE_OBJECT_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "base/result.h"
#include "host/host.h"
#include "oelf/abi.h"

namespace occlum::oskit {

class Kernel;
struct Process;
class EpollObject;

/**
 * One epoll interest entry's subscription to a source wait queue.
 * Registered on the watched file's read/write WaitQueue; when the
 * kernel notifies that queue, the watch routes the event straight to
 * its (epoll, fd) pair — O(watchers), never a scan of the epoll's
 * interest list.
 */
struct EpollWatch {
    EpollObject *epoll = nullptr;
    int fd = -1;
};

/**
 * A readiness wait queue: the set of blocked processes to wake when
 * an object's state changes (data arrived, space freed, peer closed,
 * child died). Queues never decide *when* the woken process runs —
 * the kernel re-dispatches woken processes in ascending-pid order at
 * the position the old retry-polling scheduler would have retried
 * them, which keeps the simulated cycle stream bit-identical.
 *
 * A process may wait on several queues at once (poll()); membership
 * is mirrored in Process::waiting_on so any wake detaches it from
 * every queue it joined.
 */
class WaitQueue
{
  public:
    WaitQueue() = default;
    ~WaitQueue();
    WaitQueue(const WaitQueue &) = delete;
    WaitQueue &operator=(const WaitQueue &) = delete;

    /** Register a blocked process (idempotent). */
    void add(Process *proc);
    /** Drop one process (no-op if absent). */
    void remove(Process *proc);
    /** Detach and return every waiter, emptying the queue. */
    std::vector<Process *> take();

    /** The current waiters, without detaching them. */
    const std::vector<Process *> &peek() const { return waiters_; }

    bool empty() const { return waiters_.empty(); }

    /**
     * Epoll subscriptions on this queue. Unlike waiters, watches are
     * persistent: a notification does not detach them (that is what
     * makes edge re-arming work). The EpollObject owns the watch
     * storage and detaches it when the interest entry goes away; an
     * interest entry holds a strong reference to the watched file, so
     * a queue never outlives its watches' owners nor vice versa.
     */
    void add_watch(EpollWatch *watch);
    void remove_watch(EpollWatch *watch);
    const std::vector<EpollWatch *> &watches() const { return watches_; }

  private:
    std::vector<Process *> waiters_;
    std::vector<EpollWatch *> watches_;
};

/** Result of a read/write attempt on a file object. */
struct IoResult {
    int64_t value = 0;      // >=0 bytes / result, <0 -errno
    bool would_block = false;
    uint64_t wake_time = ~0ull; // earliest useful retry (cycles), if known

    static IoResult
    ok(int64_t v)
    {
        IoResult r;
        r.value = v;
        return r;
    }

    static IoResult
    err(ErrorCode code)
    {
        IoResult r;
        r.value = -static_cast<int64_t>(code);
        return r;
    }

    static IoResult
    block(uint64_t wake = ~0ull)
    {
        IoResult r;
        r.would_block = true;
        r.wake_time = wake;
        return r;
    }
};

/** Base class for everything an fd can point at. */
class FileObject
{
  public:
    virtual ~FileObject() = default;

    virtual IoResult
    read(Kernel &kernel, uint8_t *buf, uint64_t len)
    {
        (void)kernel;
        (void)buf;
        (void)len;
        return IoResult::err(ErrorCode::kInval);
    }

    virtual IoResult
    write(Kernel &kernel, const uint8_t *buf, uint64_t len)
    {
        (void)kernel;
        (void)buf;
        (void)len;
        return IoResult::err(ErrorCode::kInval);
    }

    virtual Result<int64_t>
    seek(int64_t offset, int whence)
    {
        (void)offset;
        (void)whence;
        return Error(ErrorCode::kSPipe, "not seekable");
    }

    virtual int64_t size() const { return -1; }

    virtual Status
    fsync(Kernel &kernel)
    {
        (void)kernel;
        return Status();
    }

    /** Called when an fd referencing this object is installed. */
    virtual void on_fd_acquire() {}
    /** Called when an fd referencing this object is closed. */
    virtual void on_fd_release(Kernel &kernel) { (void)kernel; }

    /**
     * Does -EPIPE from write() carry the default-fatal SIGPIPE
     * semantics? True for pipes and connected sockets (the kernel
     * kills the writer, as POSIX's default disposition does); false
     * for objects where EPIPE is an ordinary error return.
     */
    virtual bool epipe_kills() const { return false; }

    /**
     * Wait queues for readers/writers blocked on this object. Pipe
     * ends share their Pipe's queues (both ends wake the peer); every
     * other object owns its own pair.
     */
    virtual WaitQueue &read_waiters() { return read_waiters_; }
    virtual WaitQueue &write_waiters() { return write_waiters_; }

    /**
     * Current poll() readiness (abi::kPoll* bits). Regular files and
     * the console never block, so the default is always-ready.
     */
    virtual uint64_t
    poll_ready(Kernel &kernel)
    {
        (void)kernel;
        return static_cast<uint64_t>(abi::kPollIn | abi::kPollOut);
    }

    /**
     * Earliest future simulated cycle at which poll_ready() may gain
     * bits without any wait-queue notification (e.g. a network chunk
     * already in flight). ~0 = only explicit wakeups can change it.
     */
    virtual uint64_t
    next_event_time(Kernel &kernel)
    {
        (void)kernel;
        return ~0ull;
    }

  private:
    WaitQueue read_waiters_;
    WaitQueue write_waiters_;
};

using FilePtr = std::shared_ptr<FileObject>;

/**
 * An in-kernel pipe. Both personalities use it; the *cost* of moving
 * bytes differs (Occlum/Linux copy, EIP encrypts through untrusted
 * memory) and is charged by the kernel around the byte movement.
 */
class Pipe
{
  public:
    static constexpr size_t kCapacity = 65536;

    std::deque<uint8_t> buffer;
    int readers = 0;
    int writers = 0;

    // Shared by both PipeEnd objects: a write on one end wakes
    // readers blocked on the other, and vice versa.
    WaitQueue read_waiters;
    WaitQueue write_waiters;

    bool
    can_read() const
    {
        return !buffer.empty() || writers == 0;
    }

    bool
    can_write() const
    {
        return buffer.size() < kCapacity;
    }
};

/** One end of a pipe. */
class PipeEnd : public FileObject
{
  public:
    PipeEnd(std::shared_ptr<Pipe> pipe, bool is_read_end)
        : pipe_(std::move(pipe)), read_end_(is_read_end)
    {}

    IoResult read(Kernel &kernel, uint8_t *buf, uint64_t len) override;
    IoResult write(Kernel &kernel, const uint8_t *buf,
                   uint64_t len) override;
    void on_fd_acquire() override;
    void on_fd_release(Kernel &kernel) override;

    bool is_read_end() const { return read_end_; }
    Pipe &pipe() { return *pipe_; }
    bool epipe_kills() const override { return true; }

    WaitQueue &read_waiters() override { return pipe_->read_waiters; }
    WaitQueue &write_waiters() override { return pipe_->write_waiters; }
    uint64_t poll_ready(Kernel &kernel) override;

  private:
    std::shared_ptr<Pipe> pipe_;
    bool read_end_;
};

/** The controlling console: stdout/stderr capture, EOF stdin. */
class Console : public FileObject
{
  public:
    explicit Console(std::string *sink) : sink_(sink) {}

    IoResult
    read(Kernel &, uint8_t *, uint64_t) override
    {
        return IoResult::ok(0); // EOF
    }

    IoResult
    write(Kernel &, const uint8_t *buf, uint64_t len) override
    {
        sink_->append(reinterpret_cast<const char *>(buf), len);
        return IoResult::ok(static_cast<int64_t>(len));
    }

  private:
    std::string *sink_;
};

/** A connected TCP-like socket (server side lives in a process). */
class SocketFile : public FileObject
{
  public:
    SocketFile(host::NetSim *net, host::NetSim::Connection *conn,
               bool at_server)
        : net_(net), conn_(conn), at_server_(at_server)
    {}

    IoResult read(Kernel &kernel, uint8_t *buf, uint64_t len) override;
    IoResult write(Kernel &kernel, const uint8_t *buf,
                   uint64_t len) override;
    void on_fd_acquire() override { ++fd_refs_; }
    void on_fd_release(Kernel &kernel) override;
    uint64_t poll_ready(Kernel &kernel) override;
    uint64_t next_event_time(Kernel &kernel) override;
    bool epipe_kills() const override { return true; }

    host::NetSim::Connection *conn() { return conn_; }
    bool at_server() const { return at_server_; }

  private:
    host::NetSim *net_;
    host::NetSim::Connection *conn_;
    bool at_server_;
    int fd_refs_ = 0;
};

/** A listening socket bound to a port. */
class ListenerFile : public FileObject
{
  public:
    ListenerFile(host::NetSim *net, uint16_t port)
        : net_(net), port_(port)
    {}

    host::NetSim *net() { return net_; }
    uint16_t port() const { return port_; }

    void on_fd_acquire() override { ++fd_refs_; }
    void on_fd_release(Kernel &kernel) override;
    uint64_t poll_ready(Kernel &kernel) override;
    uint64_t next_event_time(Kernel &kernel) override;

  private:
    host::NetSim *net_;
    uint16_t port_;
    int fd_refs_ = 0;
};

} // namespace occlum::oskit

#endif // OCCLUM_OSKIT_FILE_OBJECT_H
