/**
 * @file
 * The untrusted host world: where binaries live, where the encrypted
 * file system's block device persists, and where the network sits.
 *
 * In the paper's threat model (§3.1) everything here is attacker-
 * controlled; the Occlum LibOS therefore never trusts host content —
 * binaries are signature-checked, FS blocks are decrypted and
 * HMAC-verified, network data is opaque.
 */
#ifndef OCCLUM_HOST_HOST_H
#define OCCLUM_HOST_HOST_H

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "base/cost_model.h"
#include "base/result.h"
#include "base/sim_clock.h"
#include "faultsim/faultsim.h"

namespace occlum::host {

/**
 * A simple path -> bytes store: the host directory containing OELF
 * binaries and (for the Linux baseline) plain files. Cost charging is
 * the OS personality's job, not this store's.
 */
class HostFileStore
{
  public:
    void
    put(const std::string &path, Bytes content)
    {
        files_[path] = std::move(content);
    }

    bool exists(const std::string &path) const
    {
        return files_.count(path) != 0;
    }

    Result<const Bytes *>
    get(const std::string &path) const
    {
        auto it = files_.find(path);
        if (it == files_.end()) {
            return Error(ErrorCode::kNoEnt, "no such host file: " + path);
        }
        return &it->second;
    }

    Bytes *
    get_mutable(const std::string &path)
    {
        return &files_[path];
    }

    void remove(const std::string &path) { files_.erase(path); }

    size_t count() const { return files_.size(); }

  private:
    std::map<std::string, Bytes> files_;
};

/**
 * A block device backing the encrypted file system (the 1 TB SSD of
 * the paper's testbed). Reads and writes charge calibrated disk costs
 * to the shared clock. Content is untrusted: the enclave-side FS
 * encrypts and MACs every block.
 */
class BlockDevice
{
  public:
    static constexpr uint64_t kBlockSize = 4096;

    BlockDevice(SimClock &clock, uint64_t block_count)
        : clock_(&clock), blocks_(block_count)
    {}

    uint64_t block_count() const { return blocks_.size(); }

    Status
    read_block(uint64_t index, Bytes &out)
    {
        if (index >= blocks_.size()) {
            return Status(ErrorCode::kInval, "block index out of range");
        }
        switch (faultsim::FaultSim::instance().dev_read_fault()) {
          case faultsim::DevFault::kTransient:
            // The request reached the device and bounced: pay the
            // submission overhead, move no data. kAgain = retryable.
            clock_->advance(CostModel::kDiskRequestCycles);
            return Status(ErrorCode::kAgain,
                          "transient read fault (injected)");
          case faultsim::DevFault::kHard:
            clock_->advance(CostModel::kDiskRequestCycles);
            return Status(ErrorCode::kIo, "read fault (injected)");
          default:
            break;
        }
        charge_read(kBlockSize);
        if (blocks_[index].empty()) {
            out.assign(kBlockSize, 0);
        } else {
            out = blocks_[index];
        }
        return Status();
    }

    Status
    write_block(uint64_t index, const Bytes &in)
    {
        if (index >= blocks_.size() || in.size() != kBlockSize) {
            return Status(ErrorCode::kInval, "bad block write");
        }
        faultsim::FaultSim &faults = faultsim::FaultSim::instance();
        switch (faults.dev_write_fault()) {
          case faultsim::DevFault::kTransient:
            clock_->advance(CostModel::kDiskRequestCycles);
            return Status(ErrorCode::kAgain,
                          "transient write fault (injected)");
          case faultsim::DevFault::kHard:
            clock_->advance(CostModel::kDiskRequestCycles);
            return Status(ErrorCode::kIo, "write fault (injected)");
          case faultsim::DevFault::kTorn: {
            // Power-cut mid-write: the first half lands, the tail
            // keeps the old content — and the host reports success,
            // exactly the lie a real disk tells without a barrier.
            charge_write(kBlockSize);
            Bytes &block = blocks_[index];
            if (block.empty()) {
                block.assign(kBlockSize, 0);
            }
            std::copy(in.begin(), in.begin() + kBlockSize / 2,
                      block.begin());
            return Status();
          }
          case faultsim::DevFault::kCorrupt:
            // Reported success, flipped bits at rest: the attack /
            // rot case EncFs MACs exist to catch.
            charge_write(kBlockSize);
            blocks_[index] = in;
            faults.scramble(blocks_[index].data(),
                            blocks_[index].size());
            return Status();
          case faultsim::DevFault::kNone:
            break;
        }
        charge_write(kBlockSize);
        blocks_[index] = in;
        return Status();
    }

    /** Raw access without cost (used by tests to inspect/tamper). */
    Bytes &raw_block(uint64_t index) { return blocks_[index]; }

  private:
    void
    charge_read(uint64_t bytes)
    {
        clock_->advance(CostModel::kDiskRequestCycles +
                        static_cast<uint64_t>(
                            bytes * CostModel::kDiskReadCyclesPerByte));
    }

    void
    charge_write(uint64_t bytes)
    {
        clock_->advance(CostModel::kDiskRequestCycles +
                        static_cast<uint64_t>(
                            bytes * CostModel::kDiskWriteCyclesPerByte));
    }

    SimClock *clock_;
    std::vector<Bytes> blocks_;
};

/**
 * The 1 Gbps LAN between the server under test and the load
 * generator. Models a shared-bandwidth link ("busy-until" semantics)
 * plus a fixed round-trip latency; data chunks become readable at
 * their computed arrival timestamps.
 */
class NetSim
{
  public:
    explicit NetSim(SimClock &clock) : clock_(&clock) {}

    /** One direction of a connection: chunks with arrival times. */
    struct Chunk {
        Bytes data;
        uint64_t arrival_cycles;
        size_t consumed = 0;
    };

    struct Connection {
        int id = 0;
        bool open_server = true;   // server side not closed
        bool open_client = true;   // client side not closed
        std::deque<Chunk> to_server;
        std::deque<Chunk> to_client;
    };

    /** Create a listener; returns false if the port is taken. */
    bool listen(uint16_t port, int backlog);

    /** Client side: initiate a connection (completes after RTT/2). */
    Result<Connection *> connect(uint16_t port);

    /** Server side: pop a pending connection if one has arrived. */
    Connection *try_accept(uint16_t port, uint64_t now_cycles);

    /** Earliest pending-connection arrival, or ~0 if none. */
    uint64_t next_accept_time(uint16_t port) const;

    /** Enqueue bytes (shared-link bandwidth + half-RTT latency). */
    void send(Connection *conn, bool from_server, const uint8_t *data,
              size_t len);

    /**
     * Dequeue up to `cap` arrived bytes. Returns bytes read; sets
     * `next_arrival` to the earliest pending arrival when 0 is
     * returned with data still in flight (~0 if the queue is empty).
     */
    size_t recv(Connection *conn, bool at_server, uint8_t *out, size_t cap,
                uint64_t now_cycles, uint64_t &next_arrival);

    void close(Connection *conn, bool server_side);

    /** True if the peer closed and nothing is left to read. */
    bool is_drained(const Connection *conn, bool at_server,
                    uint64_t now_cycles) const;

    /** True if recv() would return bytes right now. */
    bool readable_now(const Connection *conn, bool at_server,
                      uint64_t now_cycles) const;

    /** Earliest in-flight arrival toward `at_server` (~0 if none). */
    uint64_t next_arrival_time(const Connection *conn,
                               bool at_server) const;

    /**
     * Observer hooks for the in-enclave kernel's wait queues: fired
     * when state a blocked process may be waiting on changes. `when`
     * is the simulated arrival cycle (future for in-flight data,
     * "now" for a close). Host-side load generators drive the same
     * NetSim directly, so these fire for their traffic too.
     */
    struct Events {
        std::function<void(Connection *, bool to_server, uint64_t when)>
            on_data;
        std::function<void(uint16_t port, uint64_t when)> on_connect;
        std::function<void(Connection *, bool closed_by_server)> on_close;
    };

    void set_events(Events events) { events_ = std::move(events); }

  private:
    struct Listener {
        int backlog = 16;
        std::deque<std::pair<std::unique_ptr<Connection>, uint64_t>>
            pending; // connection + arrival time
    };

    SimClock *clock_;
    std::map<uint16_t, Listener> listeners_;
    std::vector<std::unique_ptr<Connection>> established_;
    uint64_t link_busy_until_ = 0;
    int next_conn_id_ = 1;
    Events events_;
};

} // namespace occlum::host

#endif // OCCLUM_HOST_HOST_H
