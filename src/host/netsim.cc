#include "host/host.h"

#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::host {

namespace {

trace::Counter &
net_counter(const char *name)
{
    return trace::Registry::instance().counter(name);
}

} // namespace

bool
NetSim::listen(uint16_t port, int backlog)
{
    if (listeners_.count(port)) {
        return false;
    }
    Listener listener;
    listener.backlog = backlog;
    listeners_.emplace(port, std::move(listener));
    return true;
}

Result<NetSim::Connection *>
NetSim::connect(uint16_t port)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
        return Error(ErrorCode::kNoEnt, "connection refused");
    }
    if (it->second.pending.size() >=
        static_cast<size_t>(it->second.backlog)) {
        return Error(ErrorCode::kAgain, "backlog full");
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    OCC_TRACE_INSTANT(kNet, "net.connect", conn->id);
    static trace::Counter *ctr = &net_counter("net.connects");
    ctr->add();
    Connection *raw = conn.get();
    uint64_t arrival = clock_->cycles() + CostModel::kNetRttCycles / 2;
    it->second.pending.emplace_back(std::move(conn), arrival);
    if (events_.on_connect) {
        events_.on_connect(port, arrival);
    }
    return raw;
}

NetSim::Connection *
NetSim::try_accept(uint16_t port, uint64_t now_cycles)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end() || it->second.pending.empty()) {
        return nullptr;
    }
    if (it->second.pending.front().second > now_cycles) {
        return nullptr;
    }
    std::unique_ptr<Connection> conn =
        std::move(it->second.pending.front().first);
    it->second.pending.pop_front();
    Connection *raw = conn.get();
    OCC_TRACE_INSTANT(kNet, "net.accept", raw->id);
    static trace::Counter *ctr = &net_counter("net.accepts");
    ctr->add();
    established_.push_back(std::move(conn));
    return raw;
}

uint64_t
NetSim::next_accept_time(uint16_t port) const
{
    auto it = listeners_.find(port);
    if (it == listeners_.end() || it->second.pending.empty()) {
        return ~0ull;
    }
    return it->second.pending.front().second;
}

void
NetSim::send(Connection *conn, bool from_server, const uint8_t *data,
             size_t len)
{
    // Shared 1 Gbps link: the transfer occupies the link starting at
    // max(now, busy_until); it lands half an RTT after it finishes.
    static trace::Counter *ctr = &net_counter("net.bytes_sent");
    ctr->add(len);
    faultsim::FaultSim &faults = faultsim::FaultSim::instance();
    uint64_t start = std::max(clock_->cycles(), link_busy_until_);
    uint64_t transfer =
        static_cast<uint64_t>(len * CostModel::kNetCyclesPerByte);
    if (faults.net_drop_fires()) {
        // Segment loss under reliable-stream semantics: the first
        // transmission still burned the link, the sender retransmits
        // after its timeout, and the payload arrives late — loss is
        // a latency/bandwidth tax, never missing bytes.
        link_busy_until_ = start + transfer;
        start = link_busy_until_ + CostModel::kNetRetransmitCycles;
    }
    link_busy_until_ = start + transfer;
    uint64_t arrival =
        link_busy_until_ + CostModel::kNetRttCycles / 2;
    if (faults.net_dup_fires()) {
        // Spurious retransmit: the duplicate occupies the link; the
        // receiver's sequence numbers discard it, so it is visible
        // only as delay for whatever sends next.
        link_busy_until_ += transfer;
    }

    Chunk chunk;
    chunk.data.assign(data, data + len);
    chunk.arrival_cycles = arrival;
    (from_server ? conn->to_client : conn->to_server)
        .push_back(std::move(chunk));
    if (events_.on_data) {
        events_.on_data(conn, !from_server, arrival);
    }
}

size_t
NetSim::recv(Connection *conn, bool at_server, uint8_t *out, size_t cap,
             uint64_t now_cycles, uint64_t &next_arrival)
{
    auto &queue = at_server ? conn->to_server : conn->to_client;
    next_arrival = ~0ull;
    if (!queue.empty() &&
        queue.front().arrival_cycles > now_cycles) {
        // Report the pending arrival even for zero-capacity probes.
        next_arrival = queue.front().arrival_cycles;
    }
    if (!queue.empty()) {
        // Short read: the NIC hands over less than asked. Capacity
        // never drops below 1 byte, so a looping reader always makes
        // progress (no livelock against the retry machinery).
        cap = faultsim::FaultSim::instance().net_recv_cap(cap);
    }
    size_t total = 0;
    while (total < cap && !queue.empty()) {
        Chunk &chunk = queue.front();
        if (chunk.arrival_cycles > now_cycles) {
            next_arrival = chunk.arrival_cycles;
            break;
        }
        size_t n = std::min(cap - total,
                            chunk.data.size() - chunk.consumed);
        std::copy(chunk.data.begin() + chunk.consumed,
                  chunk.data.begin() + chunk.consumed + n, out + total);
        chunk.consumed += n;
        total += n;
        if (chunk.consumed == chunk.data.size()) {
            queue.pop_front();
        }
    }
    if (total > 0) {
        static trace::Counter *ctr = &net_counter("net.bytes_received");
        ctr->add(total);
    }
    return total;
}

void
NetSim::close(Connection *conn, bool server_side)
{
    // Idempotent: a second close of the same side must not re-fire
    // on_close — the peer's blocked pollers are woken exactly once
    // per hangup edge, not once per redundant close() call.
    bool &open = server_side ? conn->open_server : conn->open_client;
    if (!open) {
        return;
    }
    open = false;
    if (events_.on_close) {
        events_.on_close(conn, server_side);
    }
}

bool
NetSim::readable_now(const Connection *conn, bool at_server,
                     uint64_t now_cycles) const
{
    // recv() pops fully-consumed chunks, so a non-empty queue's front
    // always holds unread bytes; arrivals are monotone per direction.
    const auto &queue = at_server ? conn->to_server : conn->to_client;
    return !queue.empty() && queue.front().arrival_cycles <= now_cycles;
}

uint64_t
NetSim::next_arrival_time(const Connection *conn, bool at_server) const
{
    const auto &queue = at_server ? conn->to_server : conn->to_client;
    return queue.empty() ? ~0ull : queue.front().arrival_cycles;
}

bool
NetSim::is_drained(const Connection *conn, bool at_server,
                   uint64_t now_cycles) const
{
    const auto &queue = at_server ? conn->to_server : conn->to_client;
    bool peer_open = at_server ? conn->open_client : conn->open_server;
    if (peer_open) {
        return false;
    }
    for (const auto &chunk : queue) {
        (void)now_cycles;
        if (chunk.consumed < chunk.data.size()) {
            return false;
        }
    }
    return true;
}

} // namespace occlum::host
