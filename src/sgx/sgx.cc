#include "sgx/sgx.h"

#include <cstring>

#include "faultsim/faultsim.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::sgx {

namespace {

trace::Counter &
transition_counter(const char *name)
{
    return trace::Registry::instance().counter(name);
}

/** Digest of a 4 KiB zero page, computed once (see header note). */
const crypto::Sha256Digest &
zero_page_digest()
{
    static const crypto::Sha256Digest digest = [] {
        Bytes zeros(vm::kPageSize, 0);
        return crypto::Sha256::digest(zeros);
    }();
    return digest;
}

} // namespace

Status
Platform::reserve_epc(uint64_t bytes)
{
    // Fault injection: a busy platform may have paged-out / reserved
    // EPC even when our own accounting shows room (EPC is shared
    // machine-wide on real hardware).
    if (faultsim::FaultSim::instance().epc_reserve_fails()) {
        return Status(ErrorCode::kNoMem, "EPC exhausted (injected)");
    }
    if (epc_used_ + bytes > epc_capacity_) {
        return Status(ErrorCode::kNoMem, "EPC exhausted");
    }
    epc_used_ += bytes;
    return Status();
}

void
Platform::release_epc(uint64_t bytes)
{
    OCC_CHECK(bytes <= epc_used_);
    epc_used_ -= bytes;
}

Enclave::Enclave(Platform &platform, uint64_t base, uint64_t size)
    : platform_(&platform), base_(base), size_(size)
{
    OCC_CHECK_MSG((base & vm::kPageMask) == 0 &&
                  (size & vm::kPageMask) == 0,
                  "enclave range must be page aligned");
    OCC_TRACE_SPAN(kSgx, "sgx.ecreate", size);
    charge(CostModel::kEnclaveCreateFixedCycles);
    // Measure the ECREATE parameters.
    Bytes header;
    put_le<uint64_t>(header, base);
    put_le<uint64_t>(header, size);
    measuring_.update(header);
}

Enclave::~Enclave()
{
    platform_->release_epc(reserved_bytes_);
}

// Transition edges: the span brackets the clock charge, so its
// duration is exactly the transition's calibrated cycle cost and the
// breakdown benches can attribute it to the sgx category.
void
Enclave::charge_eenter()
{
    static trace::Counter *ctr = &transition_counter("sgx.eenter");
    OCC_TRACE_SPAN(kSgx, "sgx.eenter");
    ctr->add();
    charge(CostModel::kEenterCycles);
}

void
Enclave::charge_eexit()
{
    static trace::Counter *ctr = &transition_counter("sgx.eexit");
    OCC_TRACE_SPAN(kSgx, "sgx.eexit");
    ctr->add();
    charge(CostModel::kEexitCycles);
}

void
Enclave::charge_aex()
{
    static trace::Counter *ctr = &transition_counter("sgx.aex");
    OCC_TRACE_SPAN(kSgx, "sgx.aex");
    ctr->add();
    charge(CostModel::kAexCycles);
}

Status
Enclave::add_pages(uint64_t vaddr, uint64_t len, uint8_t perms,
                   const Bytes &content)
{
    if (initialized_) {
        return Status(ErrorCode::kPerm,
                      "SGX1: cannot add pages after EINIT");
    }
    if ((vaddr & vm::kPageMask) || (len & vm::kPageMask) || len == 0) {
        return Status(ErrorCode::kInval, "EADD: unaligned range");
    }
    if (vaddr < base_ || vaddr + len > base_ + size_) {
        return Status(ErrorCode::kInval, "EADD: outside enclave range");
    }
    if (content.size() > len) {
        return Status(ErrorCode::kInval, "EADD: content longer than range");
    }
    OCC_RETURN_IF_ERROR(platform_->reserve_epc(len));
    reserved_bytes_ += len;

    OCC_RETURN_IF_ERROR(mem_.map(vaddr, len, perms));
    if (!content.empty()) {
        OCC_CHECK(mem_.write_raw(vaddr, content.data(), content.size()) ==
                  vm::AccessFault::kNone);
    }

    // EEXTEND: measure page metadata plus contents.
    OCC_TRACE_SPAN(kSgx, "sgx.eadd", len / vm::kPageSize);
    uint64_t pages = len / vm::kPageSize;
    for (uint64_t i = 0; i < pages; ++i) {
        uint64_t page_vaddr = vaddr + i * vm::kPageSize;
        // Same bytes as put_le<uint64_t> + perms, without a heap
        // allocation per measured page.
        uint8_t meta[9];
        for (int b = 0; b < 8; ++b) {
            meta[b] = static_cast<uint8_t>(page_vaddr >> (8 * b));
        }
        meta[8] = perms;
        measuring_.update(meta, sizeof(meta));

        uint64_t content_off = i * vm::kPageSize;
        if (content_off >= content.size()) {
            // Whole page is zeros: fold the cached zero-page digest.
            measuring_.update(zero_page_digest().data(),
                              zero_page_digest().size());
        } else {
            // Stream the page through the persistent hasher, resumed
            // from the cached initial midstate, rather than
            // constructing a fresh Sha256 per measured page. The
            // digest folded into the measurement is unchanged.
            page_hasher_.resume(crypto::Sha256::initial_midstate());
            uint8_t page[vm::kPageSize];
            OCC_CHECK(mem_.read_raw(page_vaddr, page, vm::kPageSize) ==
                      vm::AccessFault::kNone);
            page_hasher_.update(page, vm::kPageSize);
            crypto::Sha256Digest d = page_hasher_.finish();
            measuring_.update(d.data(), d.size());
        }
    }
    added_pages_ += pages;
    charge(pages * CostModel::kEaddEextendCyclesPerPage);
    return Status();
}

Status
Enclave::measure_reserved(uint64_t len)
{
    if (initialized_) {
        return Status(ErrorCode::kPerm,
                      "SGX1: cannot add pages after EINIT");
    }
    if (len & vm::kPageMask) {
        return Status(ErrorCode::kInval, "unaligned reserve");
    }
    OCC_TRACE_SPAN(kSgx, "sgx.eadd_reserve", len / vm::kPageSize);
    uint64_t pages = len / vm::kPageSize;
    uint8_t meta[9]; // LE64(~0) anonymous-reserve marker + perms
    std::memset(meta, 0xff, 8);
    meta[8] = vm::kPermRW;
    for (uint64_t i = 0; i < pages; ++i) {
        measuring_.update(meta, sizeof(meta));
        measuring_.update(zero_page_digest().data(),
                          zero_page_digest().size());
    }
    added_pages_ += pages;
    charge(pages * CostModel::kEaddEextendCyclesPerPage);
    return Status();
}

Status
Enclave::init()
{
    if (initialized_) {
        return Status(ErrorCode::kPerm, "EINIT: already initialized");
    }
    measurement_ = measuring_.finish();
    initialized_ = true;
    OCC_TRACE_INSTANT(kSgx, "sgx.einit");
    return Status();
}

Status
Enclave::runtime_protect(uint64_t vaddr, uint64_t len, uint8_t perms)
{
    if (initialized_) {
        return Status(ErrorCode::kPerm,
                      "SGX1: page permissions are frozen after EINIT");
    }
    uint64_t gen_before = mem_.code_generation();
    OCC_RETURN_IF_ERROR(mem_.protect(vaddr, len, perms));
    if (mem_.code_generation() != gen_before) {
        // The permission change involved an executable page, so the
        // address space advanced its code generation — every CPU
        // block/decode cache derived from these pages is now stale
        // and will be rebuilt on next dispatch.
        OCC_TRACE_INSTANT(kSgx, "sgx.protect.code_invalidate", vaddr);
    }
    return Status();
}

namespace {

/**
 * The MAC'd report payload: measurement, the full enclave identity,
 * and user_data. Before identity joined this payload a report with a
 * forged signer or flipped attribute bits verified fine — the
 * regression tests in sgx_test.cc pin the fix.
 */
Bytes
report_mac_payload(const Report &report)
{
    Bytes payload(report.measurement.begin(), report.measurement.end());
    payload.insert(payload.end(), report.identity.signer.begin(),
                   report.identity.signer.end());
    put_le<uint64_t>(payload, report.identity.attributes);
    put_le<uint16_t>(payload, report.identity.isv_prod_id);
    put_le<uint16_t>(payload, report.identity.isv_svn);
    payload.insert(payload.end(), report.user_data.begin(),
                   report.user_data.end());
    return payload;
}

} // namespace

Status
Enclave::set_identity(const EnclaveIdentity &identity)
{
    if (initialized_) {
        return Status(ErrorCode::kPerm,
                      "SIGSTRUCT identity is frozen after EINIT");
    }
    identity_ = identity;
    return Status();
}

std::array<uint8_t, 64>
Enclave::bind_user_data(const Bytes &user_data)
{
    std::array<uint8_t, 64> bound{};
    if (user_data.size() <= bound.size()) {
        // Short data travels verbatim (zero-padded), preserving the
        // historical behaviour callers of small nonces rely on. An
        // empty vector's data() may be null, so skip the copy.
        if (!user_data.empty()) {
            std::memcpy(bound.data(), user_data.data(), user_data.size());
        }
    } else {
        // Longer data is digest-bound: the old code memcpy'd the
        // first 64 bytes and silently dropped the rest, so two
        // transcripts differing only beyond byte 64 produced
        // identical reports.
        crypto::Sha256Digest digest = crypto::Sha256::digest(user_data);
        std::memcpy(bound.data(), digest.data(), digest.size());
    }
    return bound;
}

Report
Enclave::create_report(const Bytes &user_data) const
{
    OCC_CHECK_MSG(initialized_, "EREPORT before EINIT");
    Report report;
    report.measurement = measurement_;
    report.identity = identity_;
    report.user_data = bind_user_data(user_data);
    Bytes payload = report_mac_payload(report);
    report.mac = crypto::hmac_sha256(platform_->report_key().data(),
                                     platform_->report_key().size(),
                                     payload.data(), payload.size());
    OCC_TRACE_SPAN(kSgx, "sgx.ereport");
    platform_->clock().advance(CostModel::kLocalAttestCycles);
    return report;
}

bool
Enclave::verify_report(const Platform &platform, const Report &report)
{
    Bytes payload = report_mac_payload(report);
    crypto::Sha256Digest expect =
        crypto::hmac_sha256(platform.report_key().data(),
                            platform.report_key().size(), payload.data(),
                            payload.size());
    return crypto::digest_equal(expect, report.mac);
}

// ---- SgxThread ------------------------------------------------------

SgxThread::SgxThread(Enclave &enclave)
    : enclave_(&enclave),
      owned_cpu_(std::make_unique<vm::Cpu>(enclave.mem())),
      cpu_(owned_cpu_.get()),
      tcs_id_(TransitionMonitor::instance().register_tcs(TcsPhase::kInside))
{}

SgxThread::SgxThread(Enclave &enclave, vm::Cpu &cpu)
    : enclave_(&enclave), cpu_(&cpu),
      tcs_id_(TransitionMonitor::instance().register_tcs(TcsPhase::kInside))
{}

void
SgxThread::record(Transition event)
{
    TransitionMonitor::instance().record(
        tcs_id_, event, enclave_->platform().clock().cycles());
}

Status
SgxThread::enter()
{
    if (phase_ == TcsPhase::kAexed) {
        // The SmashEx shape: re-entry while the single SSA frame
        // (NSSA=1) still holds the interrupted context. Refused with
        // an error, never silently serviced.
        record(Transition::kEenterRefused);
        return Status(ErrorCode::kBusy,
                      "EENTER refused: SSA frame occupied (NSSA=1)");
    }
    if (phase_ == TcsPhase::kInside) {
        record(Transition::kEenterRefused);
        return Status(ErrorCode::kBusy, "EENTER refused: TCS busy");
    }
    phase_ = TcsPhase::kInside;
    record(Transition::kEenter);
    enclave_->charge_eenter();
    return Status();
}

Status
SgxThread::leave()
{
    if (phase_ != TcsPhase::kInside) {
        record(Transition::kEexitRefused);
        return Status(ErrorCode::kInval,
                      "EEXIT refused: not executing inside the enclave");
    }
    phase_ = TcsPhase::kOutside;
    record(Transition::kEexit);
    enclave_->charge_eexit();
    return Status();
}

bool
SgxThread::try_bind(vm::Cpu &cpu)
{
    if (phase_ == TcsPhase::kAexed) {
        record(Transition::kBindRefused);
        return false;
    }
    cpu_ = &cpu;
    record(Transition::kBind);
    return true;
}

bool
SgxThread::try_aex()
{
    if (phase_ != TcsPhase::kInside) {
        record(Transition::kAexRefused);
        return false;
    }
    ssa_ = cpu_->state();
    vm::CpuState scrubbed = ssa_;
    for (size_t i = 0; i < scrubbed.regs.size(); ++i) {
        scrubbed.regs[i] = 0xae00ae00ae00ae00ull + i;
    }
    for (auto &bnd : scrubbed.bnds) {
        bnd = vm::BoundReg{};
    }
    scrubbed.flags = vm::Flags{};
    scrubbed.rip = 0;
    cpu_->set_state(scrubbed);
    phase_ = TcsPhase::kAexed;
    record(Transition::kAex);
    enclave_->charge_aex();
    return true;
}

bool
SgxThread::try_resume()
{
    if (phase_ != TcsPhase::kAexed) {
        record(Transition::kEresumeRefused);
        return false;
    }
    cpu_->set_state(ssa_);
    phase_ = TcsPhase::kInside;
    record(Transition::kEresume);
    enclave_->charge_eenter();
    return true;
}

crypto::Sha256Digest
Enclave::derive_platform_key(const Bytes &label) const
{
    OCC_CHECK_MSG(initialized_, "EGETKEY before EINIT");
    // Platform-wide derivation: keyed by the report key (which only
    // enclaves can reach), salted with a fixed domain-separation
    // prefix so a derived key can never collide with a report MAC.
    Bytes msg;
    const char *prefix = "occlum.egetkey.v1:";
    msg.insert(msg.end(), prefix, prefix + std::strlen(prefix));
    msg.insert(msg.end(), label.begin(), label.end());
    OCC_TRACE_SPAN(kSgx, "sgx.egetkey");
    platform_->clock().advance(CostModel::kEgetkeyCycles);
    return crypto::hmac_sha256(platform_->report_key().data(),
                               platform_->report_key().size(), msg.data(),
                               msg.size());
}

} // namespace occlum::sgx
