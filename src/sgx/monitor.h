/**
 * @file
 * Guardian-style transition-orderliness monitor (DESIGN.md §9).
 *
 * Every SgxThread reports its enclave transitions — EENTER, EEXIT,
 * AEX, ERESUME, plus the SMP kernel's TCS bind/rebind events — to a
 * process-wide recorder that checks the sequence online against the
 * legal per-TCS automaton:
 *
 *       EENTER                AEX
 *   kOutside ──────▶ kInside ──────▶ kAexed
 *       ◀────── EEXIT   ◀────── ERESUME
 *
 * BIND (re-pointing a TCS at another core's CPU) is legal from
 * kInside or kOutside but never from kAexed: the single SSA frame
 * (NSSA=1) holds the interrupted context until ERESUME, so a rebind
 * would orphan it. Likewise EENTER from kAexed is the SmashEx attack
 * shape — re-entering during exception handling with no free SSA
 * frame — and must surface as a *refused* transition, never a
 * serviced one.
 *
 * Refused transitions (k*Refused) are legal to record from any phase
 * and never advance it: they are the defense working. A violation is
 * a *serviced* transition taken from the wrong phase — something the
 * SgxThread state machine should make impossible — so the monitor is
 * cheap enough to stay on in every test and bench run, and the
 * counters it keeps (sgx.orderliness.*) are registered lazily on the
 * first recorded event so fault-free benches publish no new rows.
 *
 * Env toggle OCCLUM_ORDERLINESS: "0" disables recording, "strict"
 * (or "2") panics on the first violation, anything else (and unset)
 * means record-and-count. Violations always emit a kSgx trace
 * instant carrying the pid, and the record ring keeps the cycle,
 * tcs, pid, and core context for post-mortem inspection.
 */
#ifndef OCCLUM_SGX_MONITOR_H
#define OCCLUM_SGX_MONITOR_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace occlum::trace {
class Counter;
}

namespace occlum::sgx {

/** Where a TCS sits in the entry/exit automaton. */
enum class TcsPhase : uint8_t {
    kOutside, // host side: no enclave context on this TCS
    kInside,  // executing enclave code
    kAexed,   // SSA frame occupied, waiting for ERESUME
};

/** One reported transition. The k*Refused kinds record a rejected
 *  request (the caller got an error); the plain kinds record a
 *  serviced one. */
enum class Transition : uint8_t {
    kEenter,
    kEexit,
    kAex,
    kEresume,
    kBind,
    kEenterRefused,
    kEexitRefused,
    kAexRefused,
    kEresumeRefused,
    kBindRefused,
};

const char *tcs_phase_name(TcsPhase phase);
const char *transition_name(Transition event);

/** One ring entry: the transition plus its scheduling context. */
struct TransitionRecord {
    uint64_t cycles = 0;
    int32_t tcs = -1;
    int32_t pid = -1;
    int32_t core = -1;
    Transition event = Transition::kEenter;
    TcsPhase from = TcsPhase::kOutside;
    bool illegal = false;
};

class TransitionMonitor
{
  public:
    static TransitionMonitor &instance();

    bool enabled() const { return enabled_; }
    bool strict() const { return strict_; }
    void set_enabled(bool on) { enabled_ = on; }
    void set_strict(bool on) { strict_ = on; }

    /** Register a TCS; returns its id. SgxThread calls this at
     *  construction with the phase it starts in. */
    int register_tcs(TcsPhase initial);

    /**
     * Record one transition on `tcs` at `cycles` (the platform clock;
     * the monitor itself is clock-free so it can observe threads on
     * any platform). Returns false iff the transition was illegal
     * from the TCS's current phase. Legal serviced transitions
     * advance the phase; refused ones never do.
     */
    bool record(int tcs, Transition event, uint64_t cycles);

    /** Scheduling context stamped into subsequent records. The kernel
     *  sets this around its injected-AEX round trips. */
    void
    set_context(int32_t pid, int32_t core)
    {
        ctx_pid_ = pid;
        ctx_core_ = core;
    }
    void
    clear_context()
    {
        ctx_pid_ = -1;
        ctx_core_ = -1;
    }

    uint64_t events() const { return events_; }
    uint64_t violations() const { return violations_; }
    uint64_t refusals() const { return refusals_; }

    TcsPhase phase(int tcs) const;

    /** The most recent records, oldest first (bounded ring). */
    std::vector<TransitionRecord> recent() const;
    /** The first violations seen, in order (bounded). */
    const std::vector<TransitionRecord> &violation_log() const
    {
        return violation_log_;
    }

  private:
    TransitionMonitor();

    static constexpr size_t kRingSize = 256;
    static constexpr size_t kMaxViolationLog = 64;

    bool enabled_ = true;
    bool strict_ = false;
    uint64_t events_ = 0;
    uint64_t violations_ = 0;
    uint64_t refusals_ = 0;
    int32_t ctx_pid_ = -1;
    int32_t ctx_core_ = -1;
    std::vector<TcsPhase> phases_;
    std::array<TransitionRecord, kRingSize> ring_{};
    size_t ring_head_ = 0;
    size_t ring_count_ = 0;
    std::vector<TransitionRecord> violation_log_;
    // Lazily fetched on the first event so fault-free benches don't
    // grow new registry rows.
    trace::Counter *ctr_events_ = nullptr;
    trace::Counter *ctr_violations_ = nullptr;
    trace::Counter *ctr_refusals_ = nullptr;
};

/** RAII pid/core context for the monitor's records. */
class ScopedMonitorContext
{
  public:
    ScopedMonitorContext(int32_t pid, int32_t core)
    {
        TransitionMonitor::instance().set_context(pid, core);
    }
    ~ScopedMonitorContext() { TransitionMonitor::instance().clear_context(); }
    ScopedMonitorContext(const ScopedMonitorContext &) = delete;
    ScopedMonitorContext &operator=(const ScopedMonitorContext &) = delete;
};

} // namespace occlum::sgx

#endif // OCCLUM_SGX_MONITOR_H
