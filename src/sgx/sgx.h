/**
 * @file
 * Simulated Intel SGX 1.0: enclaves, EPC accounting, measurement,
 * enclave entry/exit costs, SSA-based thread state save, and local
 * attestation.
 *
 * Fidelity notes (per DESIGN.md's substitution table):
 *  - Enclave creation really hashes the added content (SHA-256) into a
 *    running measurement, so "enclave creation is expensive and scales
 *    with enclave size" (paper §2.1) is an emergent property, not a
 *    hard-coded delay. For zero-filled heap reserve pages a cached
 *    zero-page digest is folded in instead of re-hashing 4 KiB of
 *    zeros — a pure wall-clock optimization with no observable effect
 *    on the simulated cost or the uniqueness of measurements.
 *  - SGX 1.0 semantics: after EINIT no enclave page may be added,
 *    removed, or have its permissions changed (paper §2.1). The
 *    Enclave API enforces this; the Occlum LibOS therefore
 *    preallocates domain memory (paper §6).
 *  - EENTER/EEXIT/AEX charge calibrated cycle costs to the platform
 *    clock. AEX additionally saves the full CPU state — including MPX
 *    bound registers — into the thread's SSA (paper §2.1, §2.3).
 *  - Local attestation: EREPORT produces a report MAC'd with a
 *    platform-wide report key (HMAC-SHA-256); any enclave on the same
 *    platform can verify it.
 */
#ifndef OCCLUM_SGX_SGX_H
#define OCCLUM_SGX_SGX_H

#include <memory>
#include <string>
#include <vector>

#include "base/cost_model.h"
#include "base/result.h"
#include "base/sim_clock.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sgx/monitor.h"
#include "vm/address_space.h"
#include "vm/cpu.h"

namespace occlum::sgx {

/** The machine: clock, EPC pool, and the platform report key. */
class Platform
{
  public:
    explicit Platform(uint64_t epc_capacity_bytes = 4ull << 30)
        : epc_capacity_(epc_capacity_bytes)
    {
        // A fixed platform key: local attestation only needs "same
        // platform => same key"; confidentiality of the simulation is
        // not a goal.
        for (size_t i = 0; i < report_key_.size(); ++i) {
            report_key_[i] = static_cast<uint8_t>(0xA5 ^ (17 * i));
        }
    }

    SimClock &clock() { return clock_; }
    const SimClock &clock() const { return clock_; }

    uint64_t epc_used() const { return epc_used_; }
    uint64_t epc_capacity() const { return epc_capacity_; }

    const crypto::Key128 &report_key() const { return report_key_; }

    /** EPC bookkeeping (called by Enclave). */
    Status reserve_epc(uint64_t bytes);
    void release_epc(uint64_t bytes);

  private:
    SimClock clock_;
    uint64_t epc_capacity_;
    uint64_t epc_used_ = 0;
    crypto::Key128 report_key_;
};

/**
 * SIGSTRUCT-shaped enclave identity, configured before EINIT. The
 * signer digest models MRSIGNER (hash of the signing key, what oesign
 * stamps into SIGSTRUCT); attributes carry flag bits such as DEBUG;
 * isv_prod_id / isv_svn are the product and security-version numbers
 * verification policies match on. Identity is not part of MRENCLAVE
 * (as on real hardware), but every field is covered by the report MAC.
 */
struct EnclaveIdentity {
    /** The DEBUG attribute bit: secrets must not flow to debug enclaves. */
    static constexpr uint64_t kAttrDebug = 1ull << 1;

    crypto::Sha256Digest signer{};
    uint64_t attributes = 0;
    uint16_t isv_prod_id = 0;
    uint16_t isv_svn = 0;

    bool
    operator==(const EnclaveIdentity &other) const
    {
        return signer == other.signer && attributes == other.attributes &&
               isv_prod_id == other.isv_prod_id &&
               isv_svn == other.isv_svn;
    }
};

/**
 * A local-attestation report (EREPORT output). The MAC covers the
 * measurement, the full enclave identity, and user_data — a report
 * with a forged signer or attributes must not verify.
 */
struct Report {
    crypto::Sha256Digest measurement{};
    EnclaveIdentity identity{};
    std::array<uint8_t, 64> user_data{};
    crypto::Sha256Digest mac{};
};

/** A simulated SGX 1.0 enclave. */
class Enclave
{
  public:
    /**
     * ECREATE: reserve the enclave's virtual range [base, base+size)
     * and start the measurement. `size` bounds the total pages that
     * may be EADDed. Charges the fixed creation cost.
     */
    Enclave(Platform &platform, uint64_t base, uint64_t size);
    ~Enclave();

    Enclave(const Enclave &) = delete;
    Enclave &operator=(const Enclave &) = delete;

    /**
     * EADD + EEXTEND: map pages at `vaddr` with `perms` and measure
     * them. `content` is copied in (padded with zeros to a page
     * multiple); pass an empty Bytes for zero pages. Only valid
     * before init(). Charges per-page add+measure cost.
     */
    Status add_pages(uint64_t vaddr, uint64_t len, uint8_t perms,
                     const Bytes &content = {});

    /**
     * EADD+EEXTEND accounting for zero "reserve" pages (heap, stacks)
     * without materializing backing memory. The measurement and the
     * cycle cost are identical to add_pages() of zero pages; only the
     * simulator's RAM footprint differs. Used by the EIP baseline,
     * whose minimal enclaves are hundreds of MiB of mostly-zero pages.
     */
    Status measure_reserved(uint64_t len);

    /**
     * Stamp the SIGSTRUCT-shaped identity (signer, attributes, ISV
     * prod id / SVN) reported by EREPORT. Like SIGSTRUCT, identity is
     * fixed at launch: fails with kPerm after init().
     */
    Status set_identity(const EnclaveIdentity &identity);
    const EnclaveIdentity &identity() const { return identity_; }

    /** EINIT: finalize the measurement; enables enter(). */
    Status init();

    bool initialized() const { return initialized_; }
    const crypto::Sha256Digest &measurement() const { return measurement_; }
    uint64_t base() const { return base_; }
    uint64_t size() const { return size_; }

    /** The enclave's (single) address space, shared by all its threads. */
    vm::AddressSpace &mem() { return mem_; }

    /** The platform this enclave was created on. */
    Platform &platform() const { return *platform_; }

    /**
     * SGX 1.0 restriction: these fail with EPERM after init().
     * The LibOS uses them during loading (pre-init) only.
     */
    Status runtime_protect(uint64_t vaddr, uint64_t len, uint8_t perms);

    // ---- transition cost charging -------------------------------------
    // Out-of-line: each transition opens an sgx-category trace span
    // around the charge and bumps its registry counter.
    void charge_eenter();
    void charge_eexit();
    void charge_aex();

    /**
     * EREPORT: produce a local-attestation report binding `user_data`.
     * Data up to the 64-byte report field is carried verbatim
     * (zero-padded); longer data is bound by its SHA-256 digest in the
     * first 32 bytes — never silently truncated, so every byte of an
     * arbitrary-length handshake transcript stays authenticated.
     */
    Report create_report(const Bytes &user_data) const;

    /** The report_data bytes create_report(user_data) would bind. */
    static std::array<uint8_t, 64> bind_user_data(const Bytes &user_data);

    /** Verify a report against this platform's report key. */
    static bool verify_report(const Platform &platform,
                              const Report &report);

    /**
     * EGETKEY-shaped platform key derivation: any initialized enclave
     * on the same platform derives the same 32-byte key for a given
     * label, and no code outside an enclave can (the host never holds
     * the report key). Models the shared platform-bound key two local
     * enclaves use to key a channel after attesting each other; it
     * proves *co-residency*, not identity — identity comes from
     * verify_report (see DESIGN.md §8 threat model).
     */
    crypto::Sha256Digest derive_platform_key(const Bytes &label) const;

    /** Total pages EADDed so far. */
    uint64_t added_pages() const { return added_pages_; }

  private:
    void charge(uint64_t cycles) { platform_->clock().advance(cycles); }

    Platform *platform_;
    uint64_t base_;
    uint64_t size_;
    vm::AddressSpace mem_;
    crypto::Sha256 measuring_;
    /** Reused per-page hasher for EEXTEND content measurement. */
    crypto::Sha256 page_hasher_;
    crypto::Sha256Digest measurement_{};
    EnclaveIdentity identity_{};
    bool initialized_ = false;
    uint64_t added_pages_ = 0;
    uint64_t reserved_bytes_ = 0;
};

/**
 * One SGX thread: a TCS plus its SSA. By default owns a Cpu bound to
 * the enclave's address space; the second constructor binds the TCS
 * to an existing Cpu instead (the kernel's per-SIP threads). AEX
 * saves the architectural state (including bound registers) to the
 * SSA; resume() restores it.
 *
 * The TCS has a single SSA frame (NSSA=1, the configuration the
 * Occlum LibOS runs with): an AEX while already in AEX has nowhere
 * to save state, so real hardware would overwrite the frame and
 * corrupt the interrupted context. try_aex() therefore *rejects*
 * nested injection; aex() treats it as a hard programming error.
 * The same rule refuses EENTER while the frame is occupied — the
 * SmashEx re-entry shape — and refuses bind/rebind mid-AEX.
 *
 * Every transition (serviced or refused) is reported to the
 * TransitionMonitor, which checks it against the legal automaton
 * (see monitor.h) with the platform clock's cycle as context.
 */
class SgxThread
{
  public:
    explicit SgxThread(Enclave &enclave);
    SgxThread(Enclave &enclave, vm::Cpu &cpu);

    SgxThread(const SgxThread &) = delete;
    SgxThread &operator=(const SgxThread &) = delete;

    vm::Cpu &cpu() { return *cpu_; }
    Enclave &enclave() { return *enclave_; }

    /**
     * EENTER: take the TCS from host side into the enclave. Refused
     * with EBUSY while the TCS is busy (kInside) or — the SmashEx
     * rule — while the single SSA frame is occupied (kAexed): with
     * NSSA=1 there is no frame left to take an exception in, so
     * hardware faults the entry instead of servicing it.
     */
    Status enter();

    /** EEXIT: leave the enclave. Refused unless executing inside. */
    Status leave();

    /**
     * Re-point a bound-CPU TCS at another logical processor's state.
     * The SMP kernel keeps one TCS (one SSA frame) per simulated
     * core and rebinds it to whichever SIP's CPU that core is
     * executing when an AEX lands. Refused mid-AEX: the SSA frame
     * holds the interrupted state until ERESUME, and a rebind would
     * orphan it. Returns false (and records the refusal) instead of
     * crashing, so an adversarial injection schedule degrades to a
     * skipped event rather than taking the kernel down.
     */
    bool try_bind(vm::Cpu &cpu);

    /** try_bind() that treats a refused rebind as a programming error. */
    void
    bind(vm::Cpu &cpu)
    {
        OCC_CHECK_MSG(try_bind(cpu), "rebind with an occupied SSA frame");
    }

    /**
     * Asynchronous enclave exit: snapshot the state into the SSA and
     * clobber the live registers — on real SGX the synthetic state
     * the untrusted host sees is scrubbed, and anything the host
     * leaves behind is overwritten by ERESUME. Clobbering here makes
     * the restore meaningful: a field the SSA round trip dropped
     * resumes as garbage instead of silently surviving.
     * Returns false (no state change, no charge) while already in
     * AEX: the single SSA frame is occupied.
     */
    bool try_aex();

    /** try_aex() that treats nested AEX as a programming error. */
    void
    aex()
    {
        OCC_CHECK_MSG(try_aex(),
                      "nested AEX: the TCS has one SSA frame (NSSA=1)");
    }

    /**
     * ERESUME: restore the SSA snapshot (bound registers included).
     * Returns false if no AEX is pending (nothing to restore).
     */
    bool try_resume();

    /** try_resume() that treats a spurious resume as a programming error. */
    void
    resume()
    {
        OCC_CHECK_MSG(try_resume(), "ERESUME with no occupied SSA frame");
    }

    bool in_aex() const { return phase_ == TcsPhase::kAexed; }
    TcsPhase phase() const { return phase_; }
    const vm::CpuState &ssa() const { return ssa_; }
    int tcs_id() const { return tcs_id_; }

  private:
    /** Report one transition to the monitor at the platform clock. */
    void record(Transition event);

    Enclave *enclave_;
    /** Set only by the owning constructor. */
    std::unique_ptr<vm::Cpu> owned_cpu_;
    vm::Cpu *cpu_;
    vm::CpuState ssa_;
    TcsPhase phase_ = TcsPhase::kInside;
    int tcs_id_;
};

} // namespace occlum::sgx

#endif // OCCLUM_SGX_SGX_H
