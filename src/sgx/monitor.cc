#include "sgx/monitor.h"

#include <cstdlib>
#include <cstring>

#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::sgx {

const char *
tcs_phase_name(TcsPhase phase)
{
    switch (phase) {
    case TcsPhase::kOutside: return "outside";
    case TcsPhase::kInside: return "inside";
    case TcsPhase::kAexed: return "aexed";
    }
    return "?";
}

const char *
transition_name(Transition event)
{
    switch (event) {
    case Transition::kEenter: return "EENTER";
    case Transition::kEexit: return "EEXIT";
    case Transition::kAex: return "AEX";
    case Transition::kEresume: return "ERESUME";
    case Transition::kBind: return "BIND";
    case Transition::kEenterRefused: return "EENTER-refused";
    case Transition::kEexitRefused: return "EEXIT-refused";
    case Transition::kAexRefused: return "AEX-refused";
    case Transition::kEresumeRefused: return "ERESUME-refused";
    case Transition::kBindRefused: return "BIND-refused";
    }
    return "?";
}

namespace {

bool
is_refusal(Transition event)
{
    switch (event) {
    case Transition::kEenterRefused:
    case Transition::kEexitRefused:
    case Transition::kAexRefused:
    case Transition::kEresumeRefused:
    case Transition::kBindRefused:
        return true;
    default:
        return false;
    }
}

/** The legal automaton: may `event` be *serviced* from `from`? */
bool
is_legal(Transition event, TcsPhase from)
{
    switch (event) {
    case Transition::kEenter:
        // EENTER needs a free SSA frame and an idle TCS. From kAexed
        // this is the SmashEx shape (NSSA=1, frame occupied); from
        // kInside the TCS is busy. Both must be refused, so a
        // *serviced* EENTER from either phase is a violation.
        return from == TcsPhase::kOutside;
    case Transition::kEexit:
        return from == TcsPhase::kInside;
    case Transition::kAex:
        // Nested AEX has nowhere to save state (single SSA frame).
        return from == TcsPhase::kInside;
    case Transition::kEresume:
        return from == TcsPhase::kAexed;
    case Transition::kBind:
        // Rebinding while the SSA frame holds an interrupted context
        // would orphan that context.
        return from != TcsPhase::kAexed;
    default:
        // Refusals are the defense working: legal from any phase.
        return true;
    }
}

/** Where a legal serviced transition lands. */
TcsPhase
next_phase(Transition event, TcsPhase from)
{
    switch (event) {
    case Transition::kEenter: return TcsPhase::kInside;
    case Transition::kEexit: return TcsPhase::kOutside;
    case Transition::kAex: return TcsPhase::kAexed;
    case Transition::kEresume: return TcsPhase::kInside;
    default: return from; // kBind and refusals keep the phase
    }
}

} // namespace

TransitionMonitor::TransitionMonitor()
{
    const char *env = std::getenv("OCCLUM_ORDERLINESS");
    if (env != nullptr) {
        if (std::strcmp(env, "0") == 0) {
            enabled_ = false;
        } else if (std::strcmp(env, "strict") == 0 ||
                   std::strcmp(env, "2") == 0) {
            strict_ = true;
        }
    }
}

TransitionMonitor &
TransitionMonitor::instance()
{
    static TransitionMonitor monitor;
    return monitor;
}

int
TransitionMonitor::register_tcs(TcsPhase initial)
{
    int id = static_cast<int>(phases_.size());
    phases_.push_back(initial);
    return id;
}

TcsPhase
TransitionMonitor::phase(int tcs) const
{
    OCC_CHECK(tcs >= 0 && static_cast<size_t>(tcs) < phases_.size());
    return phases_[static_cast<size_t>(tcs)];
}

std::vector<TransitionRecord>
TransitionMonitor::recent() const
{
    std::vector<TransitionRecord> out;
    out.reserve(ring_count_);
    for (size_t i = 0; i < ring_count_; ++i) {
        size_t idx = (ring_head_ + kRingSize - ring_count_ + i) % kRingSize;
        out.push_back(ring_[idx]);
    }
    return out;
}

bool
TransitionMonitor::record(int tcs, Transition event, uint64_t cycles)
{
    if (!enabled_) {
        return true;
    }
    OCC_CHECK(tcs >= 0 && static_cast<size_t>(tcs) < phases_.size());
    TcsPhase &phase = phases_[static_cast<size_t>(tcs)];
    bool legal = is_legal(event, phase);

    if (ctr_events_ == nullptr) {
        auto &reg = trace::Registry::instance();
        ctr_events_ = &reg.counter("sgx.orderliness.events");
        ctr_violations_ = &reg.counter("sgx.orderliness.violations");
        ctr_refusals_ = &reg.counter("sgx.orderliness.refusals");
    }

    TransitionRecord rec;
    rec.cycles = cycles;
    rec.tcs = tcs;
    rec.pid = ctx_pid_;
    rec.core = ctx_core_;
    rec.event = event;
    rec.from = phase;
    rec.illegal = !legal;

    ring_[ring_head_] = rec;
    ring_head_ = (ring_head_ + 1) % kRingSize;
    if (ring_count_ < kRingSize) {
        ++ring_count_;
    }

    ++events_;
    ctr_events_->add();
    if (is_refusal(event)) {
        ++refusals_;
        ctr_refusals_->add();
    }
    if (legal) {
        phase = next_phase(event, phase);
        return true;
    }

    ++violations_;
    ctr_violations_->add();
    if (violation_log_.size() < kMaxViolationLog) {
        violation_log_.push_back(rec);
    }
    OCC_TRACE_INSTANT(kSgx, "sgx.orderliness.violation",
                      static_cast<uint64_t>(rec.pid));
    if (strict_) {
        OCC_PANIC("orderliness violation: "
                  << transition_name(event) << " from "
                  << tcs_phase_name(rec.from) << " on tcs " << tcs
                  << " (pid " << rec.pid << ", core " << rec.core
                  << ", cycle " << cycles << ")");
    }
    return false;
}

} // namespace occlum::sgx
