#include "workloads/workloads.h"

#include "base/log.h"
#include "verifier/verifier.h"

namespace occlum::workloads {

crypto::Key128
bench_verifier_key()
{
    crypto::Key128 key{};
    for (size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<uint8_t>(0xB0 + i);
    }
    return key;
}

ProgramBuild
build_program(const std::string &source, uint64_t pad_to,
              uint64_t heap_size, uint64_t code_reserve)
{
    ProgramBuild build;

    toolchain::CompileOptions occ;
    occ.instrument = toolchain::InstrumentOptions::full();
    occ.pad_code_to = pad_to;
    occ.heap_size = heap_size;
    occ.code_reserve = code_reserve;
    auto occ_out = toolchain::compile(source, occ);
    OCC_CHECK_MSG(occ_out.ok(), "workload compile failed: " +
                                    occ_out.error().message);
    verifier::Verifier verifier(bench_verifier_key());
    auto signed_image = verifier.verify_and_sign(occ_out.value().image);
    OCC_CHECK_MSG(signed_image.ok(), "workload verify failed: " +
                                         signed_image.error().message);
    build.occlum = signed_image.value().serialize();
    build.occlum_size = build.occlum.size();

    toolchain::CompileOptions plain;
    plain.instrument = toolchain::InstrumentOptions::none();
    plain.pad_code_to = pad_to;
    plain.heap_size = heap_size;
    plain.code_reserve = code_reserve;
    auto plain_out = toolchain::compile(source, plain);
    OCC_CHECK_MSG(plain_out.ok(), "workload compile failed (plain)");
    build.plain = plain_out.value().image.serialize();
    build.plain_size = build.plain.size();
    return build;
}

void
install(host::HostFileStore &store, const std::string &name,
        const Bytes &image)
{
    store.put(name, image);
}

// ---------------------------------------------------------------------
// Fish-like shell workload (Fig. 5a)
// ---------------------------------------------------------------------

std::string
fish_utility_source(const std::string &name)
{
    if (name == "gen") {
        // Emit ~2 KiB of pseudo-random newline-separated words.
        return R"(
global byte line[32];
func main() {
    var seed = 12345;
    var i = 0;
    while (i < 160) {
        var j = 0;
        while (j < 11) {
            seed = (seed * 1103515245 + 12345) & 0x7fffffff;
            line[j] = 'a' + (seed % 26);
            j = j + 1;
        }
        line[11] = 10;
        write(1, line, 12);
        i = i + 1;
    }
    return 0;
}
)";
    }
    if (name == "sort") {
        // Read all lines, bubble-sort by content, write out.
        return R"(
global byte buf[8192];
global int offs[512];
func main() {
    var total = 0;
    while (1) {
        var n = read(0, buf + total, 8192 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    var count = 0;
    var start = 0;
    var i = 0;
    while (i < total) {
        if (bload(buf + i) == 10) {
            offs[count] = start;
            count = count + 1;
            start = i + 1;
        }
        i = i + 1;
    }
    var swapped = 1;
    while (swapped) {
        swapped = 0;
        var k = 0;
        while (k + 1 < count) {
            var a = buf + offs[k];
            var b = buf + offs[k + 1];
            var cmp = 0;
            var j = 0;
            while (1) {
                var ca = bload(a + j);
                var cb = bload(b + j);
                if (ca != cb) { cmp = ca - cb; break; }
                if (ca == 10) { break; }
                j = j + 1;
            }
            if (cmp > 0) {
                var tmp = offs[k];
                offs[k] = offs[k + 1];
                offs[k + 1] = tmp;
                swapped = 1;
            }
            k = k + 1;
        }
    }
    var w = 0;
    while (w < count) {
        var p = buf + offs[w];
        var len = 0;
        while (bload(p + len) != 10) { len = len + 1; }
        write(1, p, len + 1);
        w = w + 1;
    }
    return 0;
}
)";
    }
    if (name == "grep") {
        // Keep lines containing the byte 'q'.
        return R"(
global byte buf[8192];
func main() {
    var total = 0;
    while (1) {
        var n = read(0, buf + total, 8192 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    var start = 0;
    var i = 0;
    while (i < total) {
        if (bload(buf + i) == 10) {
            var hit = 0;
            var j = start;
            while (j < i) {
                if (bload(buf + j) == 'q') { hit = 1; break; }
                j = j + 1;
            }
            if (hit) { write(1, buf + start, i - start + 1); }
            start = i + 1;
        }
        i = i + 1;
    }
    return 0;
}
)";
    }
    if (name == "od") {
        // Hex-dump stdin (doubles the byte count).
        return R"(
global byte inbuf[4096];
global byte outbuf[8192];
global byte digits[17] = "0123456789abcdef";
func main() {
    while (1) {
        var n = read(0, inbuf, 4096);
        if (n <= 0) { break; }
        var i = 0;
        while (i < n) {
            var b = bload(inbuf + i);
            outbuf[2 * i] = bload(digits + (b >> 4));
            outbuf[2 * i + 1] = bload(digits + (b & 15));
            i = i + 1;
        }
        write(1, outbuf, 2 * n);
    }
    return 0;
}
)";
    }
    if (name == "wc") {
        return R"(
global byte buf[4096];
func main() {
    var bytes = 0;
    var lines = 0;
    while (1) {
        var n = read(0, buf, 4096);
        if (n <= 0) { break; }
        var i = 0;
        while (i < n) {
            if (bload(buf + i) == 10) { lines = lines + 1; }
            i = i + 1;
        }
        bytes = bytes + n;
    }
    print_int(lines);
    print(" ");
    print_int(bytes);
    println("");
    return 0;
}
)";
    }
    OCC_PANIC("unknown fish utility " << name);
}

std::string
fish_driver_source()
{
    // Per iteration (argv[1] iterations): two pipelines,
    //   gen | sort | grep | wc      and      gen | od | wc
    // — seven process creations per iteration, mirroring the
    // UnixBench shell script's process-intensive profile.
    return R"(
global byte p_gen[8] = "gen";
global byte p_sort[8] = "sort";
global byte p_grep[8] = "grep";
global byte p_od[8] = "od";
global byte p_wc[8] = "wc";
global byte argbuf[16];
global int pids[8];

// Spawn `prog` with stdin=in_fd, stdout=out_fd (-1 = inherit).
func runp(prog, in_fd, out_fd) {
    var io[3];
    io[0] = in_fd;
    io[1] = out_fd;
    io[2] = 0 - 1;
    var argvv[1];
    argvv[0] = prog;
    return spawn_io(prog, argvv, 1, io);
}

func pipeline4(a, b, c, d) {
    var p1[2]; var p2[2]; var p3[2];
    pipe(p1); pipe(p2); pipe(p3);
    pids[0] = runp(a, 0 - 1, p1[1]);
    pids[1] = runp(b, p1[0], p2[1]);
    pids[2] = runp(c, p2[0], p3[1]);
    pids[3] = runp(d, p3[0], 0 - 1);
    close(p1[0]); close(p1[1]);
    close(p2[0]); close(p2[1]);
    close(p3[0]); close(p3[1]);
    var i = 0;
    while (i < 4) { waitpid(pids[i]); i = i + 1; }
    return 0;
}

func pipeline3(a, b, c) {
    var p1[2]; var p2[2];
    pipe(p1); pipe(p2);
    pids[0] = runp(a, 0 - 1, p1[1]);
    pids[1] = runp(b, p1[0], p2[1]);
    pids[2] = runp(c, p2[0], 0 - 1);
    close(p1[0]); close(p1[1]);
    close(p2[0]); close(p2[1]);
    var i = 0;
    while (i < 3) { waitpid(pids[i]); i = i + 1; }
    return 0;
}

func main() {
    var iters = 1;
    if (argc() > 1) {
        getarg(1, argbuf, 16);
        iters = atoi(argbuf);
    }
    var it = 0;
    while (it < iters) {
        pipeline4(p_gen, p_sort, p_grep, p_wc);
        pipeline3(p_gen, p_od, p_wc);
        it = it + 1;
    }
    return 0;
}
)";
}

// ---------------------------------------------------------------------
// GCC-like compile pipeline (Fig. 5b)
// ---------------------------------------------------------------------

std::string
gcc_stage_source(const std::string &stage)
{
    // Every stage streams stdin -> stdout doing per-byte "compiler"
    // work; cc1 performs several optimization passes per chunk.
    int passes = stage == "cc1" ? 6 : stage == "as" ? 2 : 1;
    std::string head = R"(
global byte buf[4096];
func main() {
    // Fixed start-up work: real compiler stages parse specs/options
    // and build tables before touching the input (this is why the
    // paper's hello-world compile takes 25 ms on native Linux).
    var warm = 0;
    var acc = 0;
    while (warm < 500000) {
        acc = acc + warm;
        warm = warm + 1;
    }
    var hash = 5381 + (acc & 1);
    var total = 0;
    while (1) {
        var n = read(0, buf, 4096);
        if (n <= 0) { break; }
        var pass = 0;
        while (pass < )" + std::to_string(passes) + R"() {
            var i = 0;
            while (i < n) {
                hash = (hash * 33 + bload(buf + i)) & 0xffffffff;
                i = i + 1;
            }
            pass = pass + 1;
        }
        // "Transform": rotate each byte by the running hash.
        var j = 0;
        while (j < n) {
            bstore(buf + j, (bload(buf + j) + 7) & 0xff);
            j = j + 1;
        }
        write(1, buf, n);
        total = total + n;
    }
)";
    if (stage == "ld") {
        head += R"(
    print("linked ");
    print_int(total);
    println(" bytes");
)";
    }
    head += R"(
    return hash & 0x7f;
}
)";
    return head;
}

std::string
gcc_driver_source()
{
    return R"(
global byte p_cpp[8] = "cpp";
global byte p_cc1[8] = "cc1";
global byte p_as[8] = "as";
global byte p_ld[8] = "ld";
global byte srcpath[64];
global byte buf[4096];
global int pids[4];

func runp(prog, in_fd, out_fd) {
    var io[3];
    io[0] = in_fd;
    io[1] = out_fd;
    io[2] = 0 - 1;
    var argvv[1];
    argvv[0] = prog;
    return spawn_io(prog, argvv, 1, io);
}

func main() {
    if (argc() < 2) { return 1; }
    getarg(1, srcpath, 64);
    var src = open(srcpath, 0);
    if (src < 0) { return 2; }

    var p0[2]; var p1[2]; var p2[2]; var p3[2];
    pipe(p0); pipe(p1); pipe(p2); pipe(p3);
    pids[0] = runp(p_cpp, p0[0], p1[1]);
    pids[1] = runp(p_cc1, p1[0], p2[1]);
    pids[2] = runp(p_as, p2[0], p3[1]);
    pids[3] = runp(p_ld, p3[0], 0 - 1);
    close(p0[0]);
    close(p1[0]); close(p1[1]);
    close(p2[0]); close(p2[1]);
    close(p3[0]); close(p3[1]);

    // Feed the translation unit into the preprocessor.
    while (1) {
        var n = read(src, buf, 4096);
        if (n <= 0) { break; }
        write(p0[1], buf, n);
    }
    close(p0[1]);
    close(src);
    var i = 0;
    while (i < 4) { waitpid(pids[i]); i = i + 1; }
    return 0;
}
)";
}

// ---------------------------------------------------------------------
// Lighttpd-like server (Fig. 5c)
// ---------------------------------------------------------------------

std::string
httpd_worker_source()
{
    // The listening socket arrives as fd 0 (inherited from the
    // master, like Lighttpd workers inheriting the listener).
    return R"(
global byte req[512];
global byte page[10240];
global byte argbuf[16];
func main() {
    var count = 1000000;
    if (argc() > 1) {
        getarg(1, argbuf, 16);
        count = atoi(argbuf);
    }
    memset(page, 'x', 10240);
    memcpy(page, "HTTP/1.1 200 OK\r\n\r\n", 19);
    var served = 0;
    while (served < count) {
        var conn = sock_accept(0);
        if (conn < 0) { break; }
        var n = sock_recv(conn, req, 512);
        if (n > 0) {
            sock_send(conn, page, 10240);
        }
        close(conn);
        served = served + 1;
    }
    return served;
}
)";
}

std::string
httpd_master_source()
{
    return R"(
global byte worker[16] = "httpd_worker";
global byte argbuf[16];
global byte cntbuf[16];
global int pids[8];
func main() {
    var workers = 2;
    var per_worker = 100;
    if (argc() > 1) { getarg(1, argbuf, 16); workers = atoi(argbuf); }
    if (argc() > 2) { getarg(2, cntbuf, 16); per_worker = atoi(cntbuf); }
    var listener = sock_listen(8080, 128);
    if (listener < 0) { return 1; }
    itoa(per_worker, cntbuf);
    var argvv[2];
    argvv[0] = worker;
    argvv[1] = cntbuf;
    var io[3];
    io[0] = listener; // the listening socket rides in as fd 0
    io[1] = 0 - 1;
    io[2] = 0 - 1;
    var w = 0;
    while (w < workers) {
        pids[w] = spawn_io(worker, argvv, 2, io);
        w = w + 1;
    }
    var total = 0;
    w = 0;
    while (w < workers) {
        total = total + waitpid(pids[w]);
        w = w + 1;
    }
    return total & 0x7f;
}
)";
}

std::string
httpd_poll_source()
{
    // Single process, single pollfd set: record i lives at
    // pfds[i*3 .. i*3+2] = {fd, events, revents} (the kernel's poll
    // ABI, 3 ints per record). Record 0 is the listener. Idle
    // connections sit in the set without costing a syscall until
    // their readiness edge fires; that is the whole point of the
    // sweep in bench_fig5c_lighttpd.
    return R"(
global int pfds[3264];
global byte req[512];
global byte page[10240];
global byte argbuf[16];
func main() {
    var count = 1000000;
    var backlog = 128;
    if (argc() > 1) { getarg(1, argbuf, 16); count = atoi(argbuf); }
    if (argc() > 2) { getarg(2, argbuf, 16); backlog = atoi(argbuf); }
    memset(page, 'x', 10240);
    memcpy(page, "HTTP/1.1 200 OK\r\n\r\n", 19);
    var listener = sock_listen(8080, backlog);
    if (listener < 0) { return 1; }
    pfds[0] = listener;
    pfds[1] = 0x1;
    pfds[2] = 0;
    var nfds = 1;
    var served = 0;
    while (served < count) {
        var ready = poll(pfds, nfds, 0 - 1);
        if (ready <= 0) { return 2; }
        if (pfds[2] & 0x1) {
            // One accept per readiness edge: accept() blocks when the
            // backlog is empty, and poll just told us it is not.
            var conn = sock_accept(listener);
            if (conn >= 0) {
                pfds[nfds * 3] = conn;
                pfds[nfds * 3 + 1] = 0x1;
                pfds[nfds * 3 + 2] = 0;
                nfds = nfds + 1;
            }
        }
        var i = 1;
        while (i < nfds) {
            if (pfds[i * 3 + 2] & 0x39) {
                // POLLIN|POLLERR|POLLHUP|POLLNVAL: serve or reap.
                var cfd = pfds[i * 3];
                var n = sock_recv(cfd, req, 512);
                if (n > 0) {
                    sock_send(cfd, page, 10240);
                    served = served + 1;
                }
                close(cfd);
                nfds = nfds - 1;
                pfds[i * 3] = pfds[nfds * 3];
                pfds[i * 3 + 1] = pfds[nfds * 3 + 1];
                pfds[i * 3 + 2] = pfds[nfds * 3 + 2];
                // The swapped-in record carries this round's revents;
                // revisit the slot.
                i = i - 1;
            }
            i = i + 1;
        }
    }
    return served & 0x7f;
}
)";
}

std::string
httpd_epoll_source()
{
    // The epoll twin of httpd_poll_source: the interest list lives in
    // the kernel, so the loop never re-submits the fd set and each
    // wait returns only the fds whose readiness actually changed —
    // O(active), not O(watched). The listener stays level-triggered
    // (one accept per event; a non-empty backlog keeps it ready), and
    // accepted connections are edge-triggered: one report per data
    // arrival, consumed by the serve-and-close below.
    return R"(
global int evs[2048];
global byte req[512];
global byte page[10240];
global byte argbuf[16];
func main() {
    var count = 1000000;
    var backlog = 128;
    if (argc() > 1) { getarg(1, argbuf, 16); count = atoi(argbuf); }
    if (argc() > 2) { getarg(2, argbuf, 16); backlog = atoi(argbuf); }
    memset(page, 'x', 10240);
    memcpy(page, "HTTP/1.1 200 OK\r\n\r\n", 19);
    var listener = sock_listen(8080, backlog);
    if (listener < 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, listener, 0x1) < 0) { return 3; }
    var served = 0;
    while (served < count) {
        var n = epoll_wait(ep, evs, 1024, 0 - 1);
        if (n <= 0) { return 4; }
        var i = 0;
        while (i < n) {
            var fd = evs[i * 2];
            var re = evs[i * 2 + 1];
            if (fd == listener) {
                var conn = sock_accept(listener);
                if (conn >= 0) {
                    // EPOLLET | POLLIN: report each arrival once.
                    epoll_ctl(ep, 1, conn, 0x80000001);
                }
            } else {
                if (re & 0x39) {
                    var m = sock_recv(fd, req, 512);
                    if (m > 0) {
                        sock_send(fd, page, 10240);
                        served = served + 1;
                    }
                    // close() drops the interest entry with the fd.
                    close(fd);
                }
            }
            i = i + 1;
        }
    }
    return served & 0x7f;
}
)";
}

// ---------------------------------------------------------------------
// Reverse proxy + backend pool (spawn + pipes + sockets in one loop)
// ---------------------------------------------------------------------

std::string
proxy_backend_source()
{
    // Backend worker: jobs arrive on stdin as 8-byte little-endian
    // connection ids; each produces a {conn-id, 10240-byte page}
    // response on stdout. EOF on the job pipe is the shutdown signal.
    return R"(
global byte job[8];
global byte out[10248];
func main() {
    memset(out + 8, 'x', 10240);
    memcpy(out + 8, "HTTP/1.1 200 OK\r\n\r\n", 19);
    while (1) {
        var got = 0;
        while (got < 8) {
            var n = read(0, job + got, 8 - got);
            if (n <= 0) { return 0; }
            got = got + n;
        }
        memcpy(out, job, 8);
        var sent = 0;
        while (sent < 10248) {
            var w = write(1, out + sent, 10248 - sent);
            if (w <= 0) { return 1; }
            sent = sent + w;
        }
    }
    return 0;
}
)";
}

std::string
proxy_frontend_source()
{
    // Frontend: one epoll set multiplexes the listener (LT), every
    // accepted connection (ET), and the four backend result pipes
    // (LT). Pipe reads are short-read safe: each backend has its own
    // reassembly buffer, and a response is only dispatched once all
    // 10248 bytes (8-byte conn id + page) have landed.
    return R"(
global int evs[512];
global byte req[512];
global byte job[8];
global byte backend[16] = "proxy_backend";
global int jobw[4];
global int resr[4];
global int bpids[4];
global byte acc[40992];
global int fill[4];
global byte argbuf[16];
func put64(buf, v) {
    var i = 0;
    while (i < 8) {
        bstore(buf + i, (v >> (i * 8)) & 0xff);
        i = i + 1;
    }
    return 0;
}
func get64(buf) {
    var v = 0;
    var i = 0;
    while (i < 8) {
        v = v | (bload(buf + i) << (i * 8));
        i = i + 1;
    }
    return v;
}
func main() {
    var count = 64;
    var backlog = 128;
    if (argc() > 1) { getarg(1, argbuf, 16); count = atoi(argbuf); }
    if (argc() > 2) { getarg(2, argbuf, 16); backlog = atoi(argbuf); }
    var listener = sock_listen(8080, backlog);
    if (listener < 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, listener, 0x1) < 0) { return 3; }
    var argvv[1];
    argvv[0] = backend;
    var b = 0;
    while (b < 4) {
        var jp[2];
        var rp[2];
        if (pipe(jp) < 0) { return 4; }
        if (pipe(rp) < 0) { return 4; }
        var io3[3];
        io3[0] = jp[0];
        io3[1] = rp[1];
        io3[2] = 0 - 1;
        bpids[b] = spawn_io(backend, argvv, 1, io3);
        if (bpids[b] < 0) { return 5; }
        close(jp[0]);
        close(rp[1]);
        jobw[b] = jp[1];
        resr[b] = rp[0];
        fill[b] = 0;
        if (epoll_ctl(ep, 1, resr[b], 0x1) < 0) { return 6; }
        b = b + 1;
    }
    var served = 0;
    var next = 0;
    while (served < count) {
        var n = epoll_wait(ep, evs, 256, 0 - 1);
        if (n <= 0) { return 7; }
        var i = 0;
        while (i < n) {
            var fd = evs[i * 2];
            var re = evs[i * 2 + 1];
            var which = 0 - 1;
            b = 0;
            while (b < 4) {
                if (fd == resr[b]) { which = b; }
                b = b + 1;
            }
            if (which >= 0) {
                // Backend response bytes: reassemble, then relay.
                var base = which * 10248;
                var m = read(fd, acc + base + fill[which],
                             10248 - fill[which]);
                if (m > 0) { fill[which] = fill[which] + m; }
                if (fill[which] == 10248) {
                    var conn = get64(acc + base);
                    sock_send(conn, acc + base + 8, 10240);
                    close(conn);
                    served = served + 1;
                    fill[which] = 0;
                }
            } else {
                if (fd == listener) {
                    conn = sock_accept(listener);
                    if (conn >= 0) {
                        epoll_ctl(ep, 1, conn, 0x80000001);
                    }
                } else {
                    if (re & 0x39) {
                        m = sock_recv(fd, req, 512);
                        if (m > 0) {
                            put64(job, fd);
                            var sent = 0;
                            while (sent < 8) {
                                var w = write(jobw[next], job + sent,
                                              8 - sent);
                                if (w <= 0) { return 8; }
                                sent = sent + w;
                            }
                            next = next + 1;
                            if (next == 4) { next = 0; }
                        } else {
                            close(fd);
                        }
                    }
                }
            }
            i = i + 1;
        }
    }
    b = 0;
    while (b < 4) {
        close(jobw[b]);
        waitpid(bpids[b]);
        b = b + 1;
    }
    return 0;
}
)";
}

// ---------------------------------------------------------------------
// Microbenchmarks (Fig. 6)
// ---------------------------------------------------------------------

std::string
spawn_noop_source()
{
    return "func main() { return 0; }";
}

std::string
pipe_writer_source()
{
    return R"(
global byte buf[4096];
global byte argbuf[24];
func main() {
    var chunk = 4096;
    var total = 1048576;
    if (argc() > 1) { getarg(1, argbuf, 24); chunk = atoi(argbuf); }
    if (argc() > 2) { getarg(2, argbuf, 24); total = atoi(argbuf); }
    memset(buf, 'd', chunk);
    var sent = 0;
    while (sent < total) {
        var n = write(1, buf, chunk);
        if (n <= 0) { break; }
        sent = sent + n;
    }
    return 0;
}
)";
}

std::string
pipe_reader_source()
{
    // Prints "RESULT <bytes> <ns>" measured from first byte to EOF so
    // the spawn cost of either end is excluded from the throughput.
    return R"(
global byte buf[4096];
global byte argbuf[24];
func main() {
    var chunk = 4096;
    if (argc() > 1) { getarg(1, argbuf, 24); chunk = atoi(argbuf); }
    var total = 0;
    var t0 = 0;
    while (1) {
        var n = read(0, buf, chunk);
        if (n <= 0) { break; }
        if (t0 == 0) { t0 = time_ns(); }
        total = total + n;
    }
    var t1 = time_ns();
    print("RESULT ");
    print_int(total);
    print(" ");
    print_int(t1 - t0);
    println("");
    return 0;
}
)";
}

std::string
file_write_bench_source()
{
    return R"(
global byte buf[16384];
global byte argbuf[24];
global byte path[24] = "/bench.dat";
func main() {
    var chunk = 4096;
    var total = 262144;
    if (argc() > 1) { getarg(1, argbuf, 24); chunk = atoi(argbuf); }
    if (argc() > 2) { getarg(2, argbuf, 24); total = atoi(argbuf); }
    memset(buf, 'w', chunk);
    var fd = open(path, 0x242);   // CREAT|TRUNC|WRONLY
    if (fd < 0) { return 1; }
    var t0 = time_ns();
    var done = 0;
    while (done < total) {
        var n = write(fd, buf, chunk);
        if (n <= 0) { return 2; }
        done = done + n;
    }
    fsync(fd);
    var t1 = time_ns();
    close(fd);
    print("RESULT ");
    print_int(done);
    print(" ");
    print_int(t1 - t0);
    println("");
    return 0;
}
)";
}

std::string
file_read_bench_source()
{
    return R"(
global byte buf[16384];
global byte argbuf[24];
global byte path[24] = "/bench.dat";
func main() {
    var chunk = 4096;
    if (argc() > 1) { getarg(1, argbuf, 24); chunk = atoi(argbuf); }
    var fd = open(path, 0);
    if (fd < 0) { return 1; }
    var t0 = time_ns();
    var total = 0;
    while (1) {
        var n = read(fd, buf, chunk);
        if (n <= 0) { break; }
        total = total + n;
    }
    var t1 = time_ns();
    close(fd);
    print("RESULT ");
    print_int(total);
    print(" ");
    print_int(t1 - t0);
    println("");
    return 0;
}
)";
}

// ---------------------------------------------------------------------
// SPECint2006-like kernels (Fig. 7)
// ---------------------------------------------------------------------

const std::vector<std::string> &
spec_kernel_names()
{
    static const std::vector<std::string> names = {
        "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer",
        "sjeng", "libquantum", "h264ref", "omnetpp", "astar",
        "xalancbmk",
    };
    return names;
}

std::string
spec_kernel_source(const std::string &name)
{
    if (name == "perlbench") {
        // String hashing + pattern matching over generated text.
        return R"(
global byte text[16384];
func main() {
    var seed = 7;
    for (i = 0; i < 16384; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        text[i] = 'a' + (seed % 26);
    }
    var hash = 0;
    var matches = 0;
    var round = 0;
    while (round < 16) {
        for (i = 0; i < 16380; i = i + 1) {
            hash = (hash * 31 + text[i]) & 0xffffff;
            if (text[i] == 'c') {
                if (text[i + 1] == 'a') {
                    if (text[i + 2] == 't') { matches = matches + 1; }
                }
            }
        }
        round = round + 1;
    }
    return (hash + matches) & 0xff;
}
)";
    }
    if (name == "bzip2") {
        // Run-length + move-to-front coding.
        return R"(
global byte data[8192];
global byte mtf[256];
global byte out[8192];
func main() {
    var seed = 99;
    for (i = 0; i < 8192; i = i + 1) {
        seed = (seed * 69069 + 1) & 0x7fffffff;
        data[i] = (seed >> 8) & 0x3f;
    }
    var check = 0;
    var round = 0;
    while (round < 12) {
        for (i = 0; i < 256; i = i + 1) { mtf[i] = i; }
        for (i = 0; i < 8192; i = i + 1) {
            var b = data[i];
            var j = 0;
            while (mtf[j] != b) { j = j + 1; }
            out[i] = j;
            while (j > 0) {
                mtf[j] = mtf[j - 1];
                j = j - 1;
            }
            mtf[0] = b;
        }
        for (i = 0; i < 8192; i = i + 1) {
            check = (check + out[i]) & 0xffffff;
        }
        round = round + 1;
    }
    return check & 0xff;
}
)";
    }
    if (name == "gcc") {
        // Token scanning + symbol-table style probing.
        return R"(
global byte src[12288];
global int table[1024];
func main() {
    var seed = 3;
    for (i = 0; i < 12288; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        src[i] = 32 + (seed % 90);
    }
    var symbols = 0;
    var round = 0;
    while (round < 10) {
        var h = 0;
        for (i = 0; i < 12288; i = i + 1) {
            var c = src[i];
            if (c > 'a') {
                h = (h * 65599 + c) & 1023;
            } else {
                if (h != 0) {
                    var idx = h;
                    if (table[idx] == 0) {
                        table[idx] = h;
                        symbols = symbols + 1;
                    }
                    h = 0;
                }
            }
        }
        round = round + 1;
    }
    return symbols & 0xff;
}
)";
    }
    if (name == "mcf") {
        // Bellman-Ford relaxation over a synthetic flow network.
        return R"(
global int dist[2048];
global int edge_from[4096];
global int edge_to[4096];
global int edge_cost[4096];
func main() {
    var seed = 41;
    for (i = 0; i < 4096; i = i + 1) {
        seed = (seed * 69069 + 7) & 0x7fffffff;
        edge_from[i] = seed % 2048;
        seed = (seed * 69069 + 7) & 0x7fffffff;
        edge_to[i] = seed % 2048;
        edge_cost[i] = 1 + (seed % 97);
    }
    for (i = 0; i < 2048; i = i + 1) { dist[i] = 1000000; }
    dist[0] = 0;
    var round = 0;
    while (round < 24) {
        for (i = 0; i < 4096; i = i + 1) {
            var u = edge_from[i];
            var v = edge_to[i];
            var du = wload(dist + u * 8);
            var alt = du + edge_cost[i];
            if (alt < wload(dist + v * 8)) {
                wstore(dist + v * 8, alt);
            }
        }
        round = round + 1;
    }
    var sum = 0;
    for (i = 0; i < 2048; i = i + 1) { sum = sum + dist[i]; }
    return sum & 0xff;
}
)";
    }
    if (name == "gobmk") {
        // Influence propagation on a 19x19 board.
        return R"(
global int board[512];
global int influence[512];
func main() {
    var seed = 5;
    for (i = 0; i < 361; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        board[i] = seed % 3;
    }
    var round = 0;
    while (round < 120) {
        for (i = 0; i < 361; i = i + 1) {
            var v = board[i] * 64;
            if (i >= 19) { v = v + influence[i - 19] / 4; }
            if (i < 342) { v = v + influence[i + 19] / 4; }
            if (i >= 1) { v = v + influence[i - 1] / 4; }
            if (i < 360) { v = v + influence[i + 1] / 4; }
            influence[i] = v & 0xffff;
        }
        round = round + 1;
    }
    var sum = 0;
    for (i = 0; i < 361; i = i + 1) { sum = sum + influence[i]; }
    return sum & 0xff;
}
)";
    }
    if (name == "hmmer") {
        // Viterbi-style dynamic programming over integer scores.
        return R"(
global int prev_row[1024];
global int curr_row[1024];
global byte seq[2048];
func main() {
    var seed = 17;
    for (i = 0; i < 2048; i = i + 1) {
        seed = (seed * 69069 + 3) & 0x7fffffff;
        seq[i] = seed % 4;
    }
    for (i = 0; i < 1024; i = i + 1) { prev_row[i] = 0; }
    var t = 0;
    while (t < 96) {
        var emit = seq[t % 2048] * 3 + 1;
        for (i = 1; i < 1024; i = i + 1) {
            var stay = prev_row[i] + 1;
            var move = prev_row[i - 1] + emit;
            if (move > stay) {
                curr_row[i] = move;
            } else {
                curr_row[i] = stay;
            }
        }
        for (i = 0; i < 1024; i = i + 1) {
            prev_row[i] = curr_row[i];
        }
        t = t + 1;
    }
    return prev_row[1023] & 0xff;
}
)";
    }
    if (name == "sjeng") {
        // Branchy alpha-beta-ish board scoring.
        return R"(
global int squares[128];
func eval(depth, alpha, beta, seed) {
    if (depth == 0) {
        return (seed * 31 + squares[seed & 127]) % 1000;
    }
    var best = alpha;
    var move = 0;
    while (move < 4) {
        var s = (seed * 69069 + move) & 0x7fffffff;
        var score = -eval(depth - 1, -beta, -best, s % 9973);
        if (score > best) { best = score; }
        if (best >= beta) { return best; }
        move = move + 1;
    }
    return best;
}
func main() {
    var seed = 23;
    for (i = 0; i < 128; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        squares[i] = seed % 500;
    }
    var total = 0;
    var game = 0;
    while (game < 40) {
        total = total + eval(7, -100000, 100000, game * 37 + 1);
        game = game + 1;
    }
    return total & 0xff;
}
)";
    }
    if (name == "libquantum") {
        // Quantum-gate bit fiddling over a register array.
        return R"(
global int amp[4096];
func main() {
    for (i = 0; i < 4096; i = i + 1) { amp[i] = i * 2654435761; }
    var round = 0;
    while (round < 40) {
        var target = round % 12;
        var mask = 1 << target;
        for (i = 0; i < 4096; i = i + 1) {
            var state = amp[i];
            if ((i & mask) != 0) {
                amp[i] = state ^ (state >> target);
            } else {
                amp[i] = state + (i & 0xff);
            }
        }
        round = round + 1;
    }
    var sum = 0;
    for (i = 0; i < 4096; i = i + 1) { sum = sum + amp[i]; }
    return sum & 0xff;
}
)";
    }
    if (name == "h264ref") {
        // Sum-of-absolute-differences block search.
        return R"(
global byte frame_a[16384];
global byte frame_b[16384];
func main() {
    var seed = 77;
    for (i = 0; i < 16384; i = i + 1) {
        seed = (seed * 69069 + 11) & 0x7fffffff;
        frame_a[i] = seed & 0xff;
        frame_b[i] = (seed >> 8) & 0xff;
    }
    var best_total = 0;
    var block = 0;
    while (block < 48) {
        var base = (block * 317) % 15000;
        var best = 1000000;
        var cand = 0;
        while (cand < 24) {
            var off = (cand * 53) % 15000;
            var sad = 0;
            for (i = 0; i < 256; i = i + 1) {
                var d = frame_a[base + i] - frame_b[off + i];
                if (d < 0) { d = -d; }
                sad = sad + d;
            }
            if (sad < best) { best = sad; }
            cand = cand + 1;
        }
        best_total = best_total + best;
        block = block + 1;
    }
    return best_total & 0xff;
}
)";
    }
    if (name == "omnetpp") {
        // Discrete-event simulation over a binary-heap event queue.
        return R"(
global int heap_time[4096];
global int heap_kind[4096];
global int heap_len;
func heap_push(t, kind) {
    var i = heap_len;
    heap_time[i] = t;
    heap_kind[i] = kind;
    heap_len = heap_len + 1;
    while (i > 0) {
        var parent = (i - 1) / 2;
        if (wload(heap_time + parent * 8) <= wload(heap_time + i * 8)) {
            break;
        }
        var tt = heap_time[parent];
        heap_time[parent] = heap_time[i];
        wstore(heap_time + i * 8, tt);
        var kk = heap_kind[parent];
        heap_kind[parent] = heap_kind[i];
        wstore(heap_kind + i * 8, kk);
        i = parent;
    }
    return 0;
}
func heap_pop() {
    var top = heap_time[0];
    heap_len = heap_len - 1;
    heap_time[0] = heap_time[heap_len];
    heap_kind[0] = heap_kind[heap_len];
    var i = 0;
    while (1) {
        var l = 2 * i + 1;
        var r = 2 * i + 2;
        var small = i;
        if (l < heap_len) {
            if (wload(heap_time + l * 8) < wload(heap_time + small * 8)) {
                small = l;
            }
        }
        if (r < heap_len) {
            if (wload(heap_time + r * 8) < wload(heap_time + small * 8)) {
                small = r;
            }
        }
        if (small == i) { break; }
        var tt = heap_time[small];
        heap_time[small] = heap_time[i];
        wstore(heap_time + i * 8, tt);
        var kk = heap_kind[small];
        heap_kind[small] = heap_kind[i];
        wstore(heap_kind + i * 8, kk);
        i = small;
    }
    return top;
}
func main() {
    heap_len = 0;
    var seed = 31;
    for (i = 0; i < 512; i = i + 1) {
        seed = (seed * 69069 + 5) & 0x7fffffff;
        heap_push(seed % 100000, i & 7);
    }
    var clock = 0;
    var processed = 0;
    while (processed < 20000) {
        if (heap_len == 0) { break; }
        clock = heap_pop();
        seed = (seed * 69069 + 5) & 0x7fffffff;
        heap_push(clock + 1 + (seed % 512), seed & 7);
        processed = processed + 1;
    }
    return (clock + processed) & 0xff;
}
)";
    }
    if (name == "astar") {
        // Grid pathfinding with a relaxation frontier.
        return R"(
global int cost[16384];
global int dist[16384];
func main() {
    var seed = 13;
    for (i = 0; i < 16384; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        cost[i] = 1 + (seed % 9);
        dist[i] = 1000000;
    }
    dist[0] = 0;
    var round = 0;
    while (round < 12) {
        for (i = 0; i < 16384; i = i + 1) {
            var d = wload(dist + i * 8);
            if (d < 1000000) {
                var right = i + 1;
                if ((right & 127) != 0) {
                    var nd = d + wload(cost + right * 8);
                    if (nd < wload(dist + right * 8)) {
                        wstore(dist + right * 8, nd);
                    }
                }
                var down = i + 128;
                if (down < 16384) {
                    var nd2 = d + wload(cost + down * 8);
                    if (nd2 < wload(dist + down * 8)) {
                        wstore(dist + down * 8, nd2);
                    }
                }
            }
        }
        round = round + 1;
    }
    return dist[16383] & 0xff;
}
)";
    }
    if (name == "xalancbmk") {
        // XML-ish tree building + repeated traversals.
        return R"(
global int first_child[8192];
global int next_sibling[8192];
global int value[8192];
func main() {
    var seed = 19;
    first_child[0] = 0 - 1;
    next_sibling[0] = 0 - 1;
    for (i = 1; i < 8192; i = i + 1) {
        seed = (seed * 69069 + 13) & 0x7fffffff;
        var parent = seed % i;
        next_sibling[i] = first_child[parent];
        first_child[parent] = i;
        first_child[i] = 0 - 1;
        value[i] = seed % 1000;
    }
    var total = 0;
    var stack = malloc(8192 * 8);
    if (stack == 0) { return 1; }
    var round = 0;
    while (round < 30) {
        // Iterative DFS with an explicit stack.
        var top = 0;
        wstore(stack, 0);
        top = 1;
        while (top > 0) {
            top = top - 1;
            var node = wload(stack + top * 8);
            total = (total + wload(value + node * 8)) & 0xffffff;
            var child = wload(first_child + node * 8);
            while (child >= 0) {
                wstore(stack + top * 8, child);
                top = top + 1;
                child = wload(next_sibling + child * 8);
            }
        }
        round = round + 1;
    }
    return total & 0xff;
}
)";
    }
    OCC_PANIC("unknown SPEC kernel " << name);
}

} // namespace occlum::workloads
