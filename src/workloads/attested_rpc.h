/**
 * @file
 * The attested key-release scenario: two OcclumSystem enclaves on one
 * platform and one NetSim run a mutual attestation handshake, then an
 * encrypted RPC session in which the server releases a secret from
 * its encrypted FS only over the attested channel, followed by a
 * configurable bulk-RPC phase for throughput measurement.
 *
 * This is the end-to-end exercise of src/attest: evidence from real
 * enclave EREPORTs, policies pinned to the peer's actual measurement
 * and signer, wire bytes through NetSim (so faultsim's net drop /
 * duplicate / short-read sites apply), and costs on the shared
 * platform clock. bench_attested_rpc and ci_faults.sh plan 5 both
 * drive it.
 */
#ifndef OCCLUM_WORKLOADS_ATTESTED_RPC_H
#define OCCLUM_WORKLOADS_ATTESTED_RPC_H

#include <string>

#include "attest/rpc.h"
#include "workloads/workloads.h"

namespace occlum::workloads {

struct AttestedRpcOptions {
    /** Bulk RPCs after the key release. */
    int requests = 32;
    size_t request_bytes = 64;
    size_t response_bytes = 1024;
    /** Pipelined requests in flight. */
    int window = 4;
    /** Ablation: plaintext records (framing kept, crypto off). */
    bool plaintext = false;
    /** Background SIPs on the server system (AEX-storm fodder). */
    int background_sips = 0;
    uint64_t seed = 42;
};

struct AttestedRpcReport {
    bool ok = false;
    /** attest_error_name of the first failure ("" when ok). */
    std::string error;
    /** True iff both endpoints derived byte-identical session keys. */
    bool keys_match = false;
    /** True iff the released secret matched the server's EncFs copy. */
    bool secret_released = false;
    uint64_t handshake_cycles = 0;
    uint64_t total_cycles = 0;
    uint64_t records = 0;
    uint64_t payload_bytes = 0;
    uint64_t retransmits = 0;
};

/** Run the scenario; panics only on harness bugs, never on injected
 *  faults (those surface as !ok + an error name, fail-closed). */
AttestedRpcReport run_attested_rpc(const AttestedRpcOptions &options);

} // namespace occlum::workloads

#endif // OCCLUM_WORKLOADS_ATTESTED_RPC_H
