/**
 * @file
 * MiniC workload programs for every benchmark in the paper's
 * evaluation (§9), plus helpers that compile them for each OS
 * personality (instrumented + verifier-signed for Occlum; plain for
 * the Linux model and the EIP baseline).
 *
 * Substitutions (documented in DESIGN.md §1): the real applications
 * (fish/GNU coreutils, GCC, Lighttpd, SPECint2006, RIPE) are replaced
 * by synthetic MiniC programs that preserve what the figures measure
 * — process counts, binary sizes, pipe traffic, request concurrency,
 * and instruction mix — not application semantics.
 */
#ifndef OCCLUM_WORKLOADS_WORKLOADS_H
#define OCCLUM_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "host/host.h"
#include "toolchain/minic.h"

namespace occlum::workloads {

/** The well-known verifier signing key used across benches/examples. */
crypto::Key128 bench_verifier_key();

/** Build variants of one program for the three systems. */
struct ProgramBuild {
    Bytes occlum; // instrumented (+optimizations), verified, signed
    Bytes plain;  // uninstrumented (Linux model, EIP baseline)
    uint64_t occlum_size = 0;
    uint64_t plain_size = 0;
};

/**
 * Compile `source` both ways. `pad_to` synthesizes a larger binary
 * (static musl-linked real-world utilities are ~1 MiB; cc1 is 14 MiB
 * in Fig. 6a). Panics on compile/verify errors: workloads are fixed
 * inputs, not user data.
 */
ProgramBuild build_program(const std::string &source, uint64_t pad_to = 0,
                           uint64_t heap_size = 1 << 20,
                           uint64_t code_reserve = 1 << 20);

/** Install one build under `name` for the right system flavor. */
void install(host::HostFileStore &store, const std::string &name,
             const Bytes &image);

// ---- application workloads (Fig. 5) ----------------------------------

/** Fish-like shell driver: runs `pipeline_count` pipelines of
 *  utilities connected by pipes over an input file. */
std::string fish_driver_source();
/** The utilities the driver spawns. name in {gen, sort, grep, od, wc}. */
std::string fish_utility_source(const std::string &name);

/** GCC-like 4-stage compile pipeline (cpp | cc1 | as | ld). */
std::string gcc_driver_source();
std::string gcc_stage_source(const std::string &stage);

/** Lighttpd-like HTTP server: master + N workers accept/serve. */
std::string httpd_master_source();
std::string httpd_worker_source();
/**
 * Single-process poll()-driven event loop (Lighttpd's actual shape):
 * one pollfd set holds the listener plus every accepted connection,
 * so thousands of idle keep-alive connections cost nothing until
 * their readiness edge fires. argv: [count, backlog].
 */
std::string httpd_poll_source();
/**
 * Single-process epoll()-driven event loop: the kernel holds the
 * interest list, so each wait costs O(ready) instead of O(watched).
 * The listener is level-triggered; accepted connections are
 * edge-triggered (EPOLLET). This is the loop the C10K→C1M sweep in
 * bench_fig5c_lighttpd drives. argv: [count, backlog].
 */
std::string httpd_epoll_source();
/**
 * Reverse proxy + backend pool: the frontend owns the listener and an
 * epoll set (listener LT, connections ET, per-backend result pipes
 * LT); requests are forwarded as 8-byte jobs over pipes to 4 spawned
 * backend SIPs, which stream {conn-id, page} responses back. Exercises
 * spawn + pipes + sockets through one epoll loop. argv: [count,
 * backlog].
 */
std::string proxy_frontend_source();
std::string proxy_backend_source();

// ---- microbenchmark workloads (Fig. 6) ---------------------------------

std::string spawn_noop_source();
std::string pipe_writer_source();
std::string pipe_reader_source();
std::string file_write_bench_source();
std::string file_read_bench_source();

// ---- SPECint-like kernels (Fig. 7) ---------------------------------------

/** The 12 kernel names, in the paper's Fig. 7a order. */
const std::vector<std::string> &spec_kernel_names();
/** MiniC source of one kernel (panics on unknown name). */
std::string spec_kernel_source(const std::string &name);

} // namespace occlum::workloads

#endif // OCCLUM_WORKLOADS_WORKLOADS_H
