#include "workloads/attested_rpc.h"

#include <algorithm>

#include "attest/handshake.h"
#include "base/log.h"
#include "base/rng.h"
#include "libos/occlum_system.h"

namespace occlum::workloads {

namespace {

constexpr uint16_t kAttestPort = 7443;
/** RPC ops of the key-release service. */
constexpr uint32_t kOpReleaseKey = 1;
constexpr uint32_t kOpBulk = 2;
const char kSecretPath[] = "/secret.key";

void
advance_to(SimClock &clock, uint64_t wake, const char *what)
{
    OCC_CHECK_MSG(wake != ~0ull, what << ": stalled with no next event");
    OCC_CHECK_MSG(wake > clock.cycles(), what << ": wake not in future");
    clock.advance(wake - clock.cycles());
}

} // namespace

AttestedRpcReport
run_attested_rpc(const AttestedRpcOptions &options)
{
    AttestedRpcReport report;

    sgx::Platform platform;
    SimClock &clock = platform.clock();
    host::NetSim net(clock);
    host::HostFileStore server_files;
    host::HostFileStore client_files;

    ProgramBuild spin;
    if (options.background_sips > 0) {
        // Compute-bound SIPs on the server system: fodder for
        // faultsim's AEX storms while the attested RPC runs.
        spin = build_program(spec_kernel_source("mcf"));
        server_files.put("spin", spin.occlum);
    }

    libos::OcclumSystem::Config server_config;
    server_config.num_slots = 4;
    server_config.verifier_key = bench_verifier_key();
    server_config.isv_prod_id = 1;
    server_config.isv_svn = 2;
    libos::OcclumSystem::Config client_config = server_config;

    libos::OcclumSystem server_sys(platform, server_files, server_config,
                                   &net);
    libos::OcclumSystem client_sys(platform, client_files, client_config,
                                   &net);

    // The secret lives only in the server's encrypted FS; the point
    // of the scenario is that it crosses the wire solely inside
    // attested-channel records.
    Bytes secret;
    Rng secret_rng(options.seed ^ 0x5ec7e7ull);
    for (int i = 0; i < 4; ++i) {
        uint64_t word = secret_rng.next();
        for (int j = 0; j < 8; ++j) {
            secret.push_back(static_cast<uint8_t>(word >> (8 * j)));
        }
    }
    OCC_CHECK(server_sys.fs().write_file(kSecretPath, secret).ok());

    for (int i = 0; i < options.background_sips; ++i) {
        auto pid = server_sys.spawn("spin", {"spin"});
        OCC_CHECK_MSG(pid.ok(), pid.error().message);
    }

    // Mutual policies pinned to the peer's *actual* measurement and
    // the shared verifier signer (oesign-style MRSIGNER).
    crypto::Key128 vkey = bench_verifier_key();
    crypto::Sha256Digest signer =
        crypto::Sha256::digest(vkey.data(), vkey.size());
    attest::Policy server_policy;
    server_policy.allowed_measurements = {
        client_sys.enclave().measurement()};
    server_policy.allowed_signers = {signer};
    server_policy.min_isv_svn = 1;
    attest::Policy client_policy = server_policy;
    client_policy.allowed_measurements = {
        server_sys.enclave().measurement()};
    attest::Verifier server_verifier(platform, server_policy);
    attest::Verifier client_verifier(platform, client_policy);

    // Connect the two systems over NetSim.
    OCC_CHECK(net.listen(kAttestPort, 4));
    auto conn = net.connect(kAttestPort);
    OCC_CHECK_MSG(conn.ok(), conn.error().message);
    host::NetSim::Connection *server_conn = nullptr;
    while ((server_conn = net.try_accept(kAttestPort, clock.cycles())) ==
           nullptr) {
        advance_to(clock, net.next_accept_time(kAttestPort),
                   "attested_rpc accept");
    }

    attest::Transport client_transport(net, conn.value(), false, clock);
    attest::Transport server_transport(net, server_conn, true, clock);

    attest::EndpointConfig client_cfg;
    client_cfg.is_server = false;
    client_cfg.nonce_seed = options.seed * 2 + 1;
    attest::EndpointConfig server_cfg;
    server_cfg.is_server = true;
    server_cfg.nonce_seed = options.seed * 2 + 2;

    uint64_t t0 = clock.cycles();
    attest::HandshakeEndpoint client(platform, client_sys.enclave(),
                                     client_verifier,
                                     std::move(client_transport),
                                     client_cfg);
    attest::HandshakeEndpoint server(platform, server_sys.enclave(),
                                     server_verifier,
                                     std::move(server_transport),
                                     server_cfg);

    auto terminal = [](const attest::HandshakeEndpoint &endpoint) {
        return endpoint.established() || endpoint.failed();
    };
    while (!(terminal(client) && terminal(server))) {
        bool progress = server.step();
        progress |= client.step();
        if (options.background_sips > 0) {
            progress |= server_sys.step_round();
        }
        if (!progress) {
            uint64_t wake = std::min(client.next_event_time(),
                                     server.next_event_time());
            if (options.background_sips > 0) {
                wake = std::min(wake, server_sys.next_wake_time());
            }
            advance_to(clock, wake, "attested_rpc handshake");
        }
    }
    report.retransmits = client.retransmits() + server.retransmits();
    if (!client.established() || !server.established()) {
        // Fail closed: surface the first error, no channel, no keys.
        report.error = attest::attest_error_name(
            client.failed() ? client.error() : server.error());
        report.total_cycles = clock.cycles() - t0;
        return report;
    }
    report.handshake_cycles = std::max(client.handshake_cycles(),
                                       server.handshake_cycles());
    report.keys_match = client.keys() == server.keys();
    if (!report.keys_match) {
        report.error = "keys_mismatch";
        report.total_cycles = clock.cycles() - t0;
        return report;
    }

    // The encrypted RPC session over the derived keys.
    attest::SecureChannel client_channel(
        attest::RecordCodec(client.keys(), false, &clock,
                            options.plaintext),
        &client.transport());
    attest::SecureChannel server_channel(
        attest::RecordCodec(server.keys(), true, &clock,
                            options.plaintext),
        &server.transport());

    attest::RpcServer rpc_server(
        std::move(server_channel),
        [&](uint32_t op, const Bytes &payload) -> Result<Bytes> {
            if (op == kOpReleaseKey) {
                return server_sys.fs().read_file(kSecretPath);
            }
            if (op == kOpBulk) {
                (void)payload;
                return Bytes(options.response_bytes, 0x5a);
            }
            return Error(ErrorCode::kInval, "unknown rpc op");
        });
    attest::RpcClient rpc_client(std::move(client_channel));

    Bytes request_payload(options.request_bytes, 0x33);
    int issued = 0;
    int completed = 0;
    int inflight = 0;
    bool key_requested = false;
    bool failed = false;

    // The key-release call goes first; bulk traffic only starts once
    // the secret came back intact (and is windowed after that).
    while (!failed && (completed < options.requests ||
                       !report.secret_released)) {
        bool progress = false;
        if (!key_requested) {
            failed = rpc_client.call(kOpReleaseKey, {}) == 0;
            key_requested = true;
            progress = true;
        }
        while (!failed && report.secret_released &&
               inflight < options.window && issued < options.requests) {
            if (rpc_client.call(kOpBulk, request_payload) == 0) {
                failed = true;
                break;
            }
            ++issued;
            ++inflight;
            progress = true;
        }
        progress |= rpc_server.step();
        for (;;) {
            attest::RpcResponse response;
            attest::RpcClient::Poll poll = rpc_client.poll(response);
            if (poll == attest::RpcClient::Poll::kNeedMore) {
                break;
            }
            if (poll != attest::RpcClient::Poll::kResponse) {
                failed = true;
                break;
            }
            progress = true;
            if (response.status != 0) {
                failed = true;
                break;
            }
            if (response.id == 1) {
                report.secret_released = response.payload == secret;
                if (!report.secret_released) {
                    failed = true;
                }
            } else {
                --inflight;
                ++completed;
                report.payload_bytes +=
                    options.request_bytes + response.payload.size();
            }
        }
        if (options.background_sips > 0) {
            progress |= server_sys.step_round();
        }
        if (failed) {
            break;
        }
        if (!progress) {
            uint64_t wake = std::min(rpc_client.next_arrival(),
                                     rpc_server.channel().next_arrival());
            if (options.background_sips > 0) {
                wake = std::min(wake, server_sys.next_wake_time());
            }
            advance_to(clock, wake, "attested_rpc rpc phase");
        }
    }

    report.records =
        rpc_client.channel().codec().next_send_seq() +
        rpc_client.channel().codec().next_recv_seq();
    report.total_cycles = clock.cycles() - t0;
    if (failed) {
        attest::AttestError channel_error =
            rpc_client.failed() ? rpc_client.error()
                                : rpc_server.error();
        report.error = attest::attest_error_name(channel_error);
        if (report.error == "none") {
            report.error = "rpc_failed";
        }
        return report;
    }
    rpc_client.channel().transport().close();
    rpc_server.channel().transport().close();
    report.ok = true;
    return report;
}

} // namespace occlum::workloads
