/**
 * @file
 * Small statistics helpers used by the benchmark harnesses: running
 * aggregates and a fixed-width table printer that mimics the rows the
 * paper's figures report.
 */
#ifndef OCCLUM_BASE_STATS_H
#define OCCLUM_BASE_STATS_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace occlum {

/**
 * Running aggregate: count / mean / min / max plus exact percentiles.
 * Samples are retained (benchmark populations are small), so
 * percentile() is nearest-rank over the sorted sample set.
 */
class Aggregate
{
  public:
    void
    add(double sample)
    {
        if (count_ == 0) {
            min_ = max_ = sample;
        } else {
            min_ = std::min(min_, sample);
            max_ = std::max(max_, sample);
        }
        sum_ += sample;
        ++count_;
        samples_.push_back(sample);
        sorted_ = false;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Nearest-rank percentile, p in [0, 100]. 0 when empty. */
    double
    percentile(double p) const
    {
        if (samples_.empty()) {
            return 0.0;
        }
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        double rank = p / 100.0 * static_cast<double>(samples_.size());
        size_t index = rank <= 1.0
                           ? 0
                           : static_cast<size_t>(rank + 0.5) - 1;
        index = std::min(index, samples_.size() - 1);
        return samples_[index];
    }

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-width console table, one per reproduced figure. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void
    set_header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
    }

    void
    add_row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render to stdout with auto-sized columns. */
    void
    print() const
    {
        std::vector<size_t> widths(header_.size(), 0);
        for (size_t c = 0; c < header_.size(); ++c) {
            widths[c] = header_[c].size();
        }
        for (const auto &row : rows_) {
            for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        std::printf("\n== %s ==\n", title_.c_str());
        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t c = 0; c < row.size(); ++c) {
                std::printf("%-*s  ", static_cast<int>(widths[c]),
                            row[c].c_str());
            }
            std::printf("\n");
        };
        print_row(header_);
        for (const auto &row : rows_) {
            print_row(row);
        }
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Human-friendly time string from microseconds (us / ms / s). */
std::string format_time_us(double us);

/** Human-friendly throughput string from MB/s. */
std::string format_mbps(double mbps);

} // namespace occlum

#endif // OCCLUM_BASE_STATS_H
