#include "base/log.h"

#include <cstdio>
#include <cstdlib>

namespace occlum {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kNone: return "NONE";
    }
    return "?";
}

} // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
log_line(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", level_name(level), file, line,
                 msg.c_str());
}

void
panic_impl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace detail

} // namespace occlum
