/**
 * @file
 * Simulated clock measured in CPU cycles.
 *
 * The entire reproduction runs on simulated time: the VM charges
 * cycles per executed instruction and the cost model charges cycles
 * for syscalls, SGX transitions, crypto, and I/O. The clock converts
 * cycles to wall time at the paper's experimental frequency
 * (3.5 GHz Intel Core i7, paper §9).
 */
#ifndef OCCLUM_BASE_SIM_CLOCK_H
#define OCCLUM_BASE_SIM_CLOCK_H

#include <cstdint>

namespace occlum {

/** Cycle-granular simulated clock. */
class SimClock
{
  public:
    /** CPU frequency used to convert cycles to seconds (paper §9). */
    static constexpr double kFrequencyHz = 3.5e9;

    uint64_t cycles() const { return cycles_; }

    void advance(uint64_t cycles) { cycles_ += cycles; }

    /**
     * Jump to an absolute cycle count, backwards included. Only the
     * SMP scheduler's round barrier may rewind: each simulated core
     * replays its share of a round from the same start time, and the
     * clock is then set to the slowest core's end time, so cores run
     * in parallel in simulated time while the host executes them
     * sequentially and deterministically.
     */
    void set_cycles(uint64_t cycles) { cycles_ = cycles; }

    void reset() { cycles_ = 0; }

    double seconds() const { return cycles_ / kFrequencyHz; }
    double millis() const { return seconds() * 1e3; }
    double micros() const { return seconds() * 1e6; }
    double nanos() const { return seconds() * 1e9; }

    /** Convert a cycle delta to microseconds. */
    static double
    cycles_to_micros(uint64_t cycles)
    {
        return cycles / kFrequencyHz * 1e6;
    }

    static double
    cycles_to_millis(uint64_t cycles)
    {
        return cycles / kFrequencyHz * 1e3;
    }

    static double
    cycles_to_seconds(uint64_t cycles)
    {
        return cycles / kFrequencyHz;
    }

  private:
    uint64_t cycles_ = 0;
};

} // namespace occlum

#endif // OCCLUM_BASE_SIM_CLOCK_H
