/**
 * @file
 * Lightweight Result<T> / Status error-handling types.
 *
 * The substrate avoids exceptions on hot paths (Google style); fallible
 * operations return Result<T> carrying either a value or an ErrorCode
 * plus message. Errno-like codes mirror the subset of POSIX errors the
 * LibOS syscall layer reports to user programs.
 */
#ifndef OCCLUM_BASE_RESULT_H
#define OCCLUM_BASE_RESULT_H

#include <string>
#include <utility>
#include <variant>

#include "base/log.h"

namespace occlum {

/** Errno-like error codes shared across the LibOS and substrates. */
enum class ErrorCode : int {
    kOk = 0,
    kPerm = 1,        // EPERM
    kNoEnt = 2,       // ENOENT
    kSrch = 3,        // ESRCH
    kIntr = 4,        // EINTR
    kIo = 5,          // EIO
    kBadF = 9,        // EBADF
    kChild = 10,      // ECHILD
    kAgain = 11,      // EAGAIN
    kNoMem = 12,      // ENOMEM
    kAccess = 13,     // EACCES
    kFault = 14,      // EFAULT
    kBusy = 16,       // EBUSY
    kExist = 17,      // EEXIST
    kNotDir = 20,     // ENOTDIR
    kIsDir = 21,      // EISDIR
    kInval = 22,      // EINVAL
    kMFile = 24,      // EMFILE
    kNoSpc = 28,      // ENOSPC
    kSPipe = 29,      // ESPIPE
    kRoFs = 30,       // EROFS
    kPipe = 32,       // EPIPE
    kNameTooLong = 36,// ENAMETOOLONG
    kNoSys = 38,      // ENOSYS
    kNotEmpty = 39,   // ENOTEMPTY
    kLoop = 40,       // ELOOP (epoll watch cycles)
    kNoExec = 8,      // ENOEXEC (rejected by verifier / bad format)
    kTimedOut = 110,  // ETIMEDOUT
    kWouldBlock = 140,// distinct from kAgain for clarity in tests
};

/** Human-readable name of an ErrorCode. */
const char *error_name(ErrorCode code);

/** An error: code plus a context message. */
struct Error {
    ErrorCode code = ErrorCode::kOk;
    std::string message;

    Error() = default;
    Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}
};

/**
 * Result of a fallible operation: either a T or an Error.
 *
 * Use value() only after checking ok(); it panics otherwise so that
 * substrate bugs fail loudly rather than propagating garbage.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : data_(std::move(value)) {}
    Result(Error error) : data_(std::move(error)) {}
    Result(ErrorCode code, std::string msg)
        : data_(Error(code, std::move(msg))) {}

    bool ok() const { return std::holds_alternative<T>(data_); }

    const T &
    value() const
    {
        OCC_CHECK_MSG(ok(), "Result::value on error: " << error().message);
        return std::get<T>(data_);
    }

    T &
    value()
    {
        OCC_CHECK_MSG(ok(), "Result::value on error: " << error().message);
        return std::get<T>(data_);
    }

    T
    take()
    {
        OCC_CHECK_MSG(ok(), "Result::take on error: " << error().message);
        return std::move(std::get<T>(data_));
    }

    const Error &
    error() const
    {
        OCC_CHECK(!ok());
        return std::get<Error>(data_);
    }

    ErrorCode code() const { return ok() ? ErrorCode::kOk : error().code; }

  private:
    std::variant<T, Error> data_;
};

/** Result specialization for operations with no payload. */
class Status
{
  public:
    Status() = default;
    Status(Error error) : error_(std::move(error)) {}
    Status(ErrorCode code, std::string msg)
        : error_(Error(code, std::move(msg))) {}

    static Status ok_status() { return Status(); }

    bool ok() const { return error_.code == ErrorCode::kOk; }
    const Error &error() const { return error_; }
    ErrorCode code() const { return error_.code; }

  private:
    Error error_;
};

} // namespace occlum

/** Propagate an error from a Status-returning expression. */
#define OCC_RETURN_IF_ERROR(expr)                                         \
    do {                                                                  \
        auto occ_status_ = (expr);                                        \
        if (!occ_status_.ok()) {                                          \
            return occ_status_.error();                                   \
        }                                                                 \
    } while (0)

#endif // OCCLUM_BASE_RESULT_H
