#include "base/result.h"

namespace occlum {

const char *
error_name(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kPerm: return "EPERM";
      case ErrorCode::kNoEnt: return "ENOENT";
      case ErrorCode::kSrch: return "ESRCH";
      case ErrorCode::kIntr: return "EINTR";
      case ErrorCode::kIo: return "EIO";
      case ErrorCode::kBadF: return "EBADF";
      case ErrorCode::kChild: return "ECHILD";
      case ErrorCode::kAgain: return "EAGAIN";
      case ErrorCode::kNoMem: return "ENOMEM";
      case ErrorCode::kAccess: return "EACCES";
      case ErrorCode::kFault: return "EFAULT";
      case ErrorCode::kBusy: return "EBUSY";
      case ErrorCode::kExist: return "EEXIST";
      case ErrorCode::kNotDir: return "ENOTDIR";
      case ErrorCode::kIsDir: return "EISDIR";
      case ErrorCode::kInval: return "EINVAL";
      case ErrorCode::kMFile: return "EMFILE";
      case ErrorCode::kNoSpc: return "ENOSPC";
      case ErrorCode::kSPipe: return "ESPIPE";
      case ErrorCode::kRoFs: return "EROFS";
      case ErrorCode::kPipe: return "EPIPE";
      case ErrorCode::kNameTooLong: return "ENAMETOOLONG";
      case ErrorCode::kNoSys: return "ENOSYS";
      case ErrorCode::kNotEmpty: return "ENOTEMPTY";
      case ErrorCode::kLoop: return "ELOOP";
      case ErrorCode::kNoExec: return "ENOEXEC";
      case ErrorCode::kTimedOut: return "ETIMEDOUT";
      case ErrorCode::kWouldBlock: return "EWOULDBLOCK";
    }
    return "E?";
}

} // namespace occlum
