#include "base/bytes.h"

#include "base/log.h"

namespace occlum {

namespace {

int
hex_digit(char c)
{
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
to_hex(const uint8_t *data, size_t len)
{
    static const char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(kDigits[data[i] >> 4]);
        out.push_back(kDigits[data[i] & 0xf]);
    }
    return out;
}

std::string
to_hex(const Bytes &data)
{
    return to_hex(data.data(), data.size());
}

Bytes
from_hex(const std::string &hex)
{
    OCC_CHECK_MSG(hex.size() % 2 == 0, "odd hex string length");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hex_digit(hex[i]);
        int lo = hex_digit(hex[i + 1]);
        OCC_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex digit");
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

} // namespace occlum
