/**
 * @file
 * Byte-buffer helpers: little-endian packing, hex formatting.
 *
 * All on-disk / in-memory binary formats in this project (OELF, the
 * OVM instruction encoding, encrypted-FS blocks) are little-endian.
 */
#ifndef OCCLUM_BASE_BYTES_H
#define OCCLUM_BASE_BYTES_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace occlum {

using Bytes = std::vector<uint8_t>;

/** Append an integer to a byte buffer in little-endian order. */
template <typename T>
inline void
put_le(Bytes &out, T value)
{
    for (size_t i = 0; i < sizeof(T); ++i) {
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
}

/** Read a little-endian integer from raw bytes (no bounds check). */
template <typename T>
inline T
get_le(const uint8_t *p)
{
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(p[i]) << (8 * i);
    }
    return value;
}

/** Write a little-endian integer into raw bytes (no bounds check). */
template <typename T>
inline void
set_le(uint8_t *p, T value)
{
    for (size_t i = 0; i < sizeof(T); ++i) {
        p[i] = static_cast<uint8_t>(value >> (8 * i));
    }
}

/** Format bytes as lowercase hex, e.g. "deadbeef". */
std::string to_hex(const uint8_t *data, size_t len);
std::string to_hex(const Bytes &data);

/** Parse lowercase/uppercase hex into bytes; panics on odd/invalid input. */
Bytes from_hex(const std::string &hex);

} // namespace occlum

#endif // OCCLUM_BASE_BYTES_H
