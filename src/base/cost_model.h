/**
 * @file
 * Calibrated cycle-cost model for everything the simulation cannot run
 * natively: host syscalls, SGX instructions, crypto throughput, disk
 * and network bandwidth.
 *
 * Every constant is documented with its source. The paper (§9) ran on a
 * 3.5 GHz two-core Intel Core i7 (Kaby Lake), 32 GB RAM, 1 TB SSD,
 * 1 Gbps Ethernet, Linux 4.15, SGX 1.0 — the constants below are chosen
 * to match that platform so the reproduced figures land in the paper's
 * regime. The *claims* we reproduce are orderings/ratios/crossovers,
 * which are insensitive to modest miscalibration (see DESIGN.md §4).
 */
#ifndef OCCLUM_BASE_COST_MODEL_H
#define OCCLUM_BASE_COST_MODEL_H

#include <cstdint>

namespace occlum {

/** All calibrated cycle costs, grouped by subsystem. */
struct CostModel {
    // ---- Native Linux host costs -------------------------------------
    /** One round trip through a trivial Linux syscall (~150 ns). */
    static constexpr uint64_t kLinuxSyscallCycles = 500;
    /**
     * Linux posix_spawn (vfork+execve): ~170 us regardless of binary
     * size because Linux only builds page tables and demand-loads
     * (paper §9.2, Fig. 6a).
     */
    static constexpr uint64_t kLinuxSpawnCycles = 595'000;
    /** Copying memory, cycles per byte (cached memcpy, ~7 GB/s). */
    static constexpr double kMemcpyCyclesPerByte = 0.5;
    /** Pipe transfer: user->kernel->user, two copies plus bookkeeping. */
    static constexpr double kPipeCopyCyclesPerByte = 1.0;

    // ---- SGX instruction costs ---------------------------------------
    /**
     * EADD + 16x EEXTEND (256-byte chunks) per 4 KiB page. Dominates
     * enclave creation; calibrated so that a Graphene-style minimal
     * 256 MiB enclave takes ~0.64 s to create (paper Fig. 6a).
     */
    static constexpr uint64_t kEaddEextendCyclesPerPage = 34'000;
    /** ECREATE + EINIT + launch-token fixed cost. */
    static constexpr uint64_t kEnclaveCreateFixedCycles = 2'000'000;
    /** EENTER (world switch into enclave, TLB flush etc., ~2 us). */
    static constexpr uint64_t kEenterCycles = 7'000;
    /** EEXIT (world switch out of enclave). */
    static constexpr uint64_t kEexitCycles = 4'500;
    /** Asynchronous enclave exit: save SSA, exit, later ERESUME. */
    static constexpr uint64_t kAexCycles = 7'000;
    /** EREPORT + MAC check for one local-attestation handshake leg. */
    static constexpr uint64_t kLocalAttestCycles = 100'000;
    /** EGETKEY: derive a platform-bound key inside the enclave. */
    static constexpr uint64_t kEgetkeyCycles = 3'000;

    // ---- Attested channels (src/attest) --------------------------------
    /**
     * Fixed per-record cost of the attested channel's record layer:
     * framing, sequence bookkeeping, and the constant part of the
     * encrypt-then-MAC pass (per-byte AES/HMAC costs are charged
     * separately via kAesCyclesPerByte / kHmacCyclesPerByte).
     */
    static constexpr uint64_t kAttestRecordFixedCycles = 400;

    // ---- Occlum LibOS costs (paper §9.2) -------------------------------
    /**
     * Fixed part of Occlum spawn: allocate a domain, set up the SIP,
     * rewrite auxv, start the SGX thread. Calibrated with
     * kOcclumLoadCyclesPerPage so spawn(14 KiB) ~ 97 us,
     * spawn(400 KiB) ~ 1.7 ms, spawn(14 MiB) ~ 63 ms (Fig. 6a).
     */
    static constexpr uint64_t kOcclumSpawnFixedCycles = 100'000;
    /**
     * Per-4KiB-page cost of loading a binary into the enclave: copy
     * into EPC, rewrite cfi_labels, zero BSS/heap. Occlum lacks
     * on-demand loading inside the enclave (paper §9.1), so the whole
     * binary is loaded eagerly.
     */
    static constexpr uint64_t kOcclumLoadCyclesPerPage = 61'000;
    /** A LibOS syscall is a function call through the trampoline. */
    static constexpr uint64_t kLibosSyscallCycles = 120;

    // ---- Crypto throughput ---------------------------------------------
    /** AES-128-CTR with AES-NI, cycles per byte. */
    static constexpr double kAesCyclesPerByte = 2.0;
    /** HMAC-SHA-256 (hardware SHA ext not assumed), cycles per byte. */
    static constexpr double kHmacCyclesPerByte = 1.2;
    /** SHA-256 measurement during EEXTEND is inside
     *  kEaddEextendCyclesPerPage; this constant is for ad-hoc hashing. */
    static constexpr double kSha256CyclesPerByte = 6.0;
    /**
     * Fixed per-read/write cost inside the encrypted FS: integrity
     * metadata lookup and bookkeeping (the Intel Protected FS keeps a
     * Merkle structure; ours keeps the MAC table). Calibrated with the
     * crypto per-byte costs so Fig. 6c/6d land near the paper's -39%
     * read / -18% write averages.
     */
    static constexpr uint64_t kEncFsOpCycles = 500;

    // ---- Storage (1 TB SATA SSD, ext4; paper §9) ------------------------
    /** Sequential read bandwidth ~500 MB/s. */
    static constexpr double kDiskReadCyclesPerByte = 7.0;
    /** Sequential write bandwidth ~110 MB/s (journaled ext4). */
    static constexpr double kDiskWriteCyclesPerByte = 32.0;
    /** Per-request overhead for a block I/O submission. */
    static constexpr uint64_t kDiskRequestCycles = 4'000;

    // ---- Network (1 Gbps Ethernet, same LAN; paper §9) ------------------
    /** 1 Gbps = 125 MB/s => 28 cycles per byte at 3.5 GHz. */
    static constexpr double kNetCyclesPerByte = 28.0;
    /** One round-trip latency in the LAN (~120 us). */
    static constexpr uint64_t kNetRttCycles = 420'000;
    /** TCP connection accept + setup cost on the host. */
    static constexpr uint64_t kNetAcceptCycles = 20'000;
    /**
     * Client retransmission timer for a handshake flight: generous
     * (several RTTs) because NetSim models loss as delay, so a resend
     * signals a *badly* delayed flight, not a lost one.
     */
    static constexpr uint64_t kAttestRetryCycles = 8 * kNetRttCycles;
    /**
     * Fail-closed deadline for a whole attestation handshake: an
     * endpoint that cannot finish by then reports kTimeout and closes
     * — it never stays half-open holding partially-derived keys.
     */
    static constexpr uint64_t kAttestHandshakeDeadlineCycles =
        64 * kNetRttCycles;

    // ---- Graphene-like EIP baseline -------------------------------------
    /**
     * Minimal enclave size for a Graphene-style process. The paper
     * configures "the minimal enclave size that is able to run the
     * benchmark"; a Graphene manifest below 256 MiB rarely boots a
     * LibOS + libc + heap, so that is our floor.
     */
    static constexpr uint64_t kEipMinEnclaveBytes = 256ull << 20;
    /**
     * Extra enclave headroom per byte of application binary (code,
     * relocation, heap scaled with binary size). Calibrated so a
     * 14 MiB binary lands near the paper's 0.89 s Graphene spawn.
     */
    static constexpr double kEipEnclaveBytesPerBinaryByte = 4.0;
    /** Serializing + transferring process state at checkpoint/restore. */
    static constexpr double kEipStateTransferCyclesPerByte = 4.0;

    // ---- Fault handling (src/faultsim; DESIGN.md "Fault model") ---------
    /**
     * Bounded retries after a transient (EAGAIN-shaped) host I/O
     * fault: the first attempt plus up to this many retries, then the
     * error is surfaced as EIO. Small because each retry re-pays the
     * OCALL round trip.
     */
    static constexpr uint32_t kIoRetryLimit = 3;
    /** Backoff charged before the first retry; doubles per retry. */
    static constexpr uint64_t kIoRetryBackoffCycles = 8'000;
    /**
     * Extra delay when the network drops a segment: the sender's
     * retransmission timer, ~2 RTTs (an RTT-estimator's floor on a
     * quiet LAN). Only charged under injected loss.
     */
    static constexpr uint64_t kNetRetransmitCycles = 2 * kNetRttCycles;

    /** Convert a byte count to whole 4 KiB pages (rounding up). */
    static constexpr uint64_t
    pages_for(uint64_t bytes)
    {
        return (bytes + 4095) / 4096;
    }
};

} // namespace occlum

#endif // OCCLUM_BASE_COST_MODEL_H
