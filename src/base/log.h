/**
 * @file
 * Logging, assertion, and fatal-error facilities.
 *
 * Follows the gem5 convention: panic() for "this is a bug in the
 * simulator itself", fatal() for "the user asked for something
 * impossible". OCC_CHECK is an always-on assertion used to guard
 * invariants in the substrate.
 */
#ifndef OCCLUM_BASE_LOG_H
#define OCCLUM_BASE_LOG_H

#include <cstdint>
#include <sstream>
#include <string>

namespace occlum {

/** Severity levels for the global logger. */
enum class LogLevel : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kNone = 4,
};

/** Global log-level filter; messages below this level are dropped. */
LogLevel log_level();

/** Set the global log-level filter (e.g. from tests or benches). */
void set_log_level(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr. */
void log_line(LogLevel level, const char *file, int line,
              const std::string &msg);

/** Print a fatal message and abort the process. */
[[noreturn]] void panic_impl(const char *file, int line,
                             const std::string &msg);

} // namespace detail

} // namespace occlum

#define OCC_LOG(level, msg_expr)                                          \
    do {                                                                  \
        if (static_cast<int>(level) >=                                    \
            static_cast<int>(::occlum::log_level())) {                    \
            std::ostringstream occ_log_ss_;                               \
            occ_log_ss_ << msg_expr;                                      \
            ::occlum::detail::log_line(level, __FILE__, __LINE__,         \
                                       occ_log_ss_.str());                \
        }                                                                 \
    } while (0)

#define OCC_DEBUG(msg) OCC_LOG(::occlum::LogLevel::kDebug, msg)
#define OCC_INFO(msg) OCC_LOG(::occlum::LogLevel::kInfo, msg)
#define OCC_WARN(msg) OCC_LOG(::occlum::LogLevel::kWarn, msg)
#define OCC_ERROR(msg) OCC_LOG(::occlum::LogLevel::kError, msg)

/** Unrecoverable internal error: prints and aborts. */
#define OCC_PANIC(msg_expr)                                               \
    do {                                                                  \
        std::ostringstream occ_panic_ss_;                                 \
        occ_panic_ss_ << msg_expr;                                        \
        ::occlum::detail::panic_impl(__FILE__, __LINE__,                  \
                                     occ_panic_ss_.str());                \
    } while (0)

/** Always-on invariant check; aborts with a message on failure. */
#define OCC_CHECK(cond)                                                   \
    do {                                                                  \
        if (!(cond)) {                                                    \
            OCC_PANIC("check failed: " #cond);                            \
        }                                                                 \
    } while (0)

#define OCC_CHECK_MSG(cond, msg_expr)                                     \
    do {                                                                  \
        if (!(cond)) {                                                    \
            OCC_PANIC("check failed: " #cond << ": " << msg_expr);        \
        }                                                                 \
    } while (0)

#endif // OCCLUM_BASE_LOG_H
