#include "base/stats.h"

#include <cstdarg>

namespace occlum {

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

std::string
format_time_us(double us)
{
    if (us < 1000.0) {
        return format("%.1fus", us);
    }
    if (us < 1e6) {
        return format("%.2fms", us / 1e3);
    }
    return format("%.3fs", us / 1e6);
}

std::string
format_mbps(double mbps)
{
    if (mbps >= 1000.0) {
        return format("%.2fGB/s", mbps / 1000.0);
    }
    return format("%.1fMB/s", mbps);
}

} // namespace occlum
