/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64).
 *
 * All randomness in the simulation (workload data, property-test
 * fuzzing, network jitter) flows through explicitly-seeded Rng
 * instances so that every benchmark and test is reproducible.
 */
#ifndef OCCLUM_BASE_RNG_H
#define OCCLUM_BASE_RNG_H

#include <cstdint>

namespace occlum {

/** SplitMix64: tiny, fast, well-distributed, deterministic. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next 64 random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    next_below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    next_range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            next_below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state_;
};

} // namespace occlum

#endif // OCCLUM_BASE_RNG_H
