/**
 * @file
 * The EIP baseline: a Graphene-SGX-like LibOS where every process is
 * an Enclave-Isolated Process (paper §3.2, Table 1):
 *  - spawn creates a *new enclave* (measured page by page), performs
 *    local attestation with the parent, and transfers the initial
 *    process state over an encrypted stream — the three steps that
 *    make EIP process creation ~10,000x slower than Linux;
 *  - IPC moves through untrusted memory, paying AES encryption +
 *    decryption per byte and two world switches per operation;
 *  - the shared file system is read-only protected files (Graphene
 *    lacks a writable encrypted FS); reads decrypt per chunk and exit
 *    the enclave per operation.
 */
#ifndef OCCLUM_BASELINE_EIP_SYSTEM_H
#define OCCLUM_BASELINE_EIP_SYSTEM_H

#include <list>

#include "oskit/kernel.h"
#include "sgx/sgx.h"

namespace occlum::baseline {

/** A read-only protected file (contents verified+decrypted on read). */
class ProtectedFile : public oskit::FileObject
{
  public:
    ProtectedFile(host::HostFileStore *store, std::string path)
        : store_(store), path_(std::move(path))
    {}

    oskit::IoResult read(oskit::Kernel &kernel, uint8_t *buf,
                         uint64_t len) override;
    oskit::IoResult
    write(oskit::Kernel &, const uint8_t *, uint64_t) override
    {
        return oskit::IoResult::err(ErrorCode::kRoFs);
    }
    Result<int64_t> seek(int64_t offset, int whence) override;
    int64_t size() const override;

  private:
    host::HostFileStore *store_;
    std::string path_;
    uint64_t offset_ = 0;
};

/** The EIP kernel personality. */
class EipSystem : public oskit::Kernel
{
  public:
    struct Config {
        /** Extra enclave headroom: LibOS + libc + heap. The paper
         *  benchmarks Graphene with "the minimal enclave size that is
         *  able to run the benchmark"; this is that floor. */
        uint64_t min_enclave_bytes = CostModel::kEipMinEnclaveBytes;
    };

    EipSystem(sgx::Platform &platform, host::HostFileStore &binaries,
              Config config, host::NetSim *net = nullptr);

    EipSystem(sgx::Platform &platform, host::HostFileStore &binaries)
        : EipSystem(platform, binaries, Config{}, nullptr)
    {}

    uint64_t net_op_cost() const override
    {
        return CostModel::kEexitCycles + CostModel::kEenterCycles;
    }

    /**
     * Pipes cross enclave boundaries through untrusted memory: the
     * writer encrypts on its side, the reader decrypts on its own —
     * one AES pass per side on top of the copy.
     */
    double
    pipe_byte_cost() const override
    {
        return CostModel::kPipeCopyCyclesPerByte +
               CostModel::kAesCyclesPerByte;
    }

    /** ...plus an (amortized, exitless-batched) world switch per op. */
    uint64_t
    pipe_op_cost() const override
    {
        return (CostModel::kEexitCycles + CostModel::kEenterCycles) / 2;
    }

  protected:
    Result<std::unique_ptr<oskit::Process>>
    create_process(const std::string &path,
                   const std::vector<std::string> &argv) override;
    void destroy_process(oskit::Process &proc) override;

    uint64_t
    syscall_cost() const override
    {
        // Handled by the in-enclave LibOS like Occlum's.
        return CostModel::kLibosSyscallCycles;
    }

    Result<oskit::FilePtr> fs_open(oskit::Process &proc,
                                   const std::string &path,
                                   uint64_t flags) override;
    Status
    fs_unlink(const std::string &path) override
    {
        (void)path;
        return Status(ErrorCode::kRoFs, "EIP shared FS is read-only");
    }
    Status
    fs_mkdir(const std::string &path) override
    {
        (void)path;
        return Status(ErrorCode::kRoFs, "EIP shared FS is read-only");
    }

  private:
    sgx::Platform *platform_;
    Config config_;
    /** One enclave per live process. */
    std::map<uint64_t, std::unique_ptr<sgx::Enclave>> enclaves_;
};

} // namespace occlum::baseline

#endif // OCCLUM_BASELINE_EIP_SYSTEM_H
