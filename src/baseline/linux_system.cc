#include "baseline/linux_system.h"

#include "oelf/abi.h"
#include "oskit/loader.h"

namespace occlum::baseline {

using oskit::IoResult;

// ---------------------------------------------------------------------
// ExtFile
// ---------------------------------------------------------------------

ExtFile::ExtFile(host::HostFileStore *store, std::string path,
                 uint64_t flags)
    : store_(store), path_(std::move(path)), flags_(flags)
{
    Bytes *content = store_->get_mutable(path_);
    if (flags_ & abi::kOpenTrunc) {
        content->clear();
    }
    if (flags_ & abi::kOpenAppend) {
        offset_ = content->size();
    }
}

IoResult
ExtFile::read(oskit::Kernel &kernel, uint8_t *buf, uint64_t len)
{
    const Bytes *content = store_->get_mutable(path_);
    if (offset_ >= content->size()) {
        return IoResult::ok(0);
    }
    uint64_t n = std::min<uint64_t>(len, content->size() - offset_);
    std::copy(content->begin() + offset_, content->begin() + offset_ + n,
              buf);
    offset_ += n;
    kernel.charge(static_cast<uint64_t>(
        n * (CostModel::kDiskReadCyclesPerByte +
             CostModel::kMemcpyCyclesPerByte)));
    return IoResult::ok(static_cast<int64_t>(n));
}

IoResult
ExtFile::write(oskit::Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    if ((flags_ & (abi::kOpenWrite | abi::kOpenRdWr)) == 0) {
        return IoResult::err(ErrorCode::kBadF);
    }
    Bytes *content = store_->get_mutable(path_);
    if (offset_ + len > content->size()) {
        content->resize(offset_ + len);
    }
    std::copy(buf, buf + len, content->begin() + offset_);
    offset_ += len;
    kernel.charge(static_cast<uint64_t>(
        len * (CostModel::kDiskWriteCyclesPerByte +
               CostModel::kMemcpyCyclesPerByte)));
    return IoResult::ok(static_cast<int64_t>(len));
}

Result<int64_t>
ExtFile::seek(int64_t offset, int whence)
{
    const Bytes *content = store_->get_mutable(path_);
    int64_t base = 0;
    switch (whence) {
      case static_cast<int>(abi::kSeekSet): base = 0; break;
      case static_cast<int>(abi::kSeekCur):
        base = static_cast<int64_t>(offset_);
        break;
      case static_cast<int>(abi::kSeekEnd):
        base = static_cast<int64_t>(content->size());
        break;
      default:
        return Error(ErrorCode::kInval, "bad whence");
    }
    int64_t pos = base + offset;
    if (pos < 0) {
        return Error(ErrorCode::kInval, "negative seek");
    }
    offset_ = static_cast<uint64_t>(pos);
    return pos;
}

int64_t
ExtFile::size() const
{
    return static_cast<int64_t>(store_->get_mutable(path_)->size());
}

// ---------------------------------------------------------------------
// LinuxSystem
// ---------------------------------------------------------------------

Result<std::unique_ptr<oskit::Process>>
LinuxSystem::create_process(const std::string &path,
                            const std::vector<std::string> &argv)
{
    auto raw = binaries().get(path);
    if (!raw.ok()) {
        return raw.error();
    }
    auto image = oelf::Image::parse(*raw.value());
    if (!image.ok()) {
        return image.error();
    }

    auto proc = std::make_unique<oskit::Process>();
    proc->owned_space = std::make_unique<vm::AddressSpace>();
    proc->space = proc->owned_space.get();
    proc->owned_cpu = std::make_unique<vm::Cpu>(*proc->space);
    proc->cpu = proc->owned_cpu.get();

    oskit::LoadOptions options;
    options.domain_id = 1; // single domain per process
    options.rewrite_cfi = true;
    options.map_pages = true;
    uint64_t base = next_base_;
    // Each process has its own address space; the base only needs to
    // be clear of low guard pages.
    auto domain = oskit::load_image(*proc->space, image.value(), base,
                                    argv, options);
    if (!domain.ok()) {
        return domain.error();
    }
    oskit::init_cpu(*proc->cpu, domain.value());
    proc->domain_base = domain.value().base;
    proc->d_begin = domain.value().d_begin;
    proc->d_end = domain.value().d_end;
    proc->mmap_cursor = domain.value().mmap_begin;
    proc->mmap_end = domain.value().mmap_end;

    // Native spawn cost: flat, binary-size independent (Fig. 6a).
    charge(CostModel::kLinuxSpawnCycles);
    return proc;
}

Result<oskit::FilePtr>
LinuxSystem::fs_open(oskit::Process &proc, const std::string &path,
                     uint64_t flags)
{
    (void)proc;
    if (!binaries().exists(path)) {
        if (!(flags & abi::kOpenCreate)) {
            return Error(ErrorCode::kNoEnt, "no such file: " + path);
        }
        binaries().put(path, {});
    }
    return oskit::FilePtr(
        std::make_shared<ExtFile>(&binaries(), path, flags));
}

Status
LinuxSystem::fs_unlink(const std::string &path)
{
    if (!binaries().exists(path)) {
        return Status(ErrorCode::kNoEnt, "no such file");
    }
    binaries().remove(path);
    return Status();
}

Status
LinuxSystem::fs_mkdir(const std::string &path)
{
    (void)path; // the flat host store has no real directories
    return Status();
}

} // namespace occlum::baseline
