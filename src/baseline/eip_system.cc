#include "baseline/eip_system.h"

#include "oelf/abi.h"
#include "oskit/loader.h"

namespace occlum::baseline {

using oskit::IoResult;

// ---------------------------------------------------------------------
// ProtectedFile
// ---------------------------------------------------------------------

IoResult
ProtectedFile::read(oskit::Kernel &kernel, uint8_t *buf, uint64_t len)
{
    const Bytes *content = store_->get_mutable(path_);
    if (offset_ >= content->size()) {
        return IoResult::ok(0);
    }
    uint64_t n = std::min<uint64_t>(len, content->size() - offset_);
    std::copy(content->begin() + offset_, content->begin() + offset_ + n,
              buf);
    offset_ += n;
    // OCALL out for the host read, then decrypt + MAC-check in-enclave.
    kernel.charge(CostModel::kEexitCycles + CostModel::kEenterCycles +
                  static_cast<uint64_t>(
                      n * (CostModel::kDiskReadCyclesPerByte +
                           CostModel::kAesCyclesPerByte +
                           CostModel::kHmacCyclesPerByte +
                           CostModel::kMemcpyCyclesPerByte)));
    return IoResult::ok(static_cast<int64_t>(n));
}

Result<int64_t>
ProtectedFile::seek(int64_t offset, int whence)
{
    const Bytes *content = store_->get_mutable(path_);
    int64_t base = 0;
    switch (whence) {
      case static_cast<int>(abi::kSeekSet): base = 0; break;
      case static_cast<int>(abi::kSeekCur):
        base = static_cast<int64_t>(offset_);
        break;
      case static_cast<int>(abi::kSeekEnd):
        base = static_cast<int64_t>(content->size());
        break;
      default:
        return Error(ErrorCode::kInval, "bad whence");
    }
    int64_t pos = base + offset;
    if (pos < 0) {
        return Error(ErrorCode::kInval, "negative seek");
    }
    offset_ = static_cast<uint64_t>(pos);
    return pos;
}

int64_t
ProtectedFile::size() const
{
    return static_cast<int64_t>(store_->get_mutable(path_)->size());
}

// ---------------------------------------------------------------------
// EipSystem
// ---------------------------------------------------------------------

EipSystem::EipSystem(sgx::Platform &platform,
                     host::HostFileStore &binaries, Config config,
                     host::NetSim *net)
    : Kernel(platform.clock(), binaries, net), platform_(&platform),
      config_(config)
{}

Result<std::unique_ptr<oskit::Process>>
EipSystem::create_process(const std::string &path,
                          const std::vector<std::string> &argv)
{
    auto raw = binaries().get(path);
    if (!raw.ok()) {
        return raw.error();
    }
    auto parsed = oelf::Image::parse(*raw.value());
    if (!parsed.ok()) {
        return parsed.error();
    }
    oelf::Image image = parsed.take();

    // Step 1 of EIP spawn (paper §3.2): create a brand-new enclave
    // sized to the configured minimum, measuring every page.
    constexpr uint64_t kBase = 0x100000000ull;
    uint64_t domain_bytes =
        (image.domain_size() + vm::kPageMask) & ~vm::kPageMask;
    // Enclave size: the configured floor plus headroom that scales
    // with the application (relocation, heap, mmap arena) — this is
    // why the paper's Graphene spawn grows from 0.64 s to 0.89 s as
    // the binary grows (Fig. 6a).
    uint64_t enclave_bytes =
        config_.min_enclave_bytes +
        static_cast<uint64_t>(
            domain_bytes * CostModel::kEipEnclaveBytesPerBinaryByte);
    enclave_bytes = (enclave_bytes + vm::kPageMask) & ~vm::kPageMask;
    auto enclave = std::make_unique<sgx::Enclave>(*platform_, kBase,
                                                  enclave_bytes);
    // Reserve (and measure) everything beyond the loaded image.
    OCC_RETURN_IF_ERROR(
        enclave->measure_reserved(enclave_bytes - domain_bytes));

    auto proc = std::make_unique<oskit::Process>();
    proc->space = &enclave->mem();
    proc->owned_cpu = std::make_unique<vm::Cpu>(enclave->mem());
    proc->cpu = proc->owned_cpu.get();

    oskit::LoadOptions options;
    options.domain_id = 1;
    options.rewrite_cfi = true;
    options.map_pages = true; // this enclave belongs to one process
    // SGX 1.0 LibOSes reserve an RWX page pool for dynamic loading —
    // the common pitfall paper SS7 notes makes them susceptible to
    // code injection. Occlum does not have this.
    options.data_rwx = true;
    auto domain = oskit::load_image(enclave->mem(), image, kBase, argv,
                                    options);
    if (!domain.ok()) {
        return domain.error();
    }
    // Charge the measurement of the loaded image pages (the loader
    // mapped them directly; EADD accounting happens here).
    charge(CostModel::pages_for(domain_bytes) *
           CostModel::kEaddEextendCyclesPerPage);
    OCC_RETURN_IF_ERROR(enclave->init());

    // Step 2: local attestation with the parent's enclave (both legs).
    enclave->create_report({});
    charge(CostModel::kLocalAttestCycles);

    // Step 3: vfork+execve-style state hand-off over an encrypted
    // stream (fd table, environment; no address-space copy).
    constexpr uint64_t kStateBytes = 16 << 10;
    charge(CostModel::kEexitCycles + CostModel::kEenterCycles +
           static_cast<uint64_t>(
               kStateBytes * (CostModel::kEipStateTransferCyclesPerByte +
                              2 * CostModel::kAesCyclesPerByte)));

    oskit::init_cpu(*proc->cpu, domain.value());
    proc->domain_base = domain.value().base;
    proc->d_begin = domain.value().d_begin;
    proc->d_end = domain.value().d_end;
    proc->mmap_cursor = domain.value().mmap_begin;
    proc->mmap_end = domain.value().mmap_end;

    enclaves_[reinterpret_cast<uint64_t>(proc.get())] =
        std::move(enclave);
    return proc;
}

void
EipSystem::destroy_process(oskit::Process &proc)
{
    enclaves_.erase(reinterpret_cast<uint64_t>(&proc));
}

Result<oskit::FilePtr>
EipSystem::fs_open(oskit::Process &proc, const std::string &path,
                   uint64_t flags)
{
    (void)proc;
    if (flags & (abi::kOpenWrite | abi::kOpenRdWr | abi::kOpenCreate |
                 abi::kOpenTrunc | abi::kOpenAppend)) {
        return Error(ErrorCode::kRoFs,
                     "EIP shared FS is read-only (paper Table 1)");
    }
    if (!binaries().exists(path)) {
        return Error(ErrorCode::kNoEnt, path);
    }
    return oskit::FilePtr(
        std::make_shared<ProtectedFile>(&binaries(), path));
}

} // namespace occlum::baseline
