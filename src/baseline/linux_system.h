/**
 * @file
 * The Linux baseline: the reference line in the paper's Figures 5
 * and 6. Runs the same OELF binaries (uninstrumented builds) with
 * native-Linux cost characteristics:
 *  - spawn is a flat ~170 us (page tables only, demand loading —
 *    paper §9.2), independent of binary size;
 *  - a syscall is a ~500-cycle trap;
 *  - files live on an ext4-model host store charged at SSD costs;
 *  - pipes are plain double-copy kernel buffers.
 */
#ifndef OCCLUM_BASELINE_LINUX_SYSTEM_H
#define OCCLUM_BASELINE_LINUX_SYSTEM_H

#include "oskit/kernel.h"

namespace occlum::baseline {

/** A plain host file opened through the ext4 model. */
class ExtFile : public oskit::FileObject
{
  public:
    ExtFile(host::HostFileStore *store, std::string path, uint64_t flags);

    oskit::IoResult read(oskit::Kernel &kernel, uint8_t *buf,
                         uint64_t len) override;
    oskit::IoResult write(oskit::Kernel &kernel, const uint8_t *buf,
                          uint64_t len) override;
    Result<int64_t> seek(int64_t offset, int whence) override;
    int64_t size() const override;

  private:
    host::HostFileStore *store_;
    std::string path_;
    uint64_t flags_;
    uint64_t offset_ = 0;
};

/** The Linux-model kernel. */
class LinuxSystem : public oskit::Kernel
{
  public:
    LinuxSystem(SimClock &clock, host::HostFileStore &files,
                host::NetSim *net = nullptr)
        : Kernel(clock, files, net)
    {}

  protected:
    Result<std::unique_ptr<oskit::Process>>
    create_process(const std::string &path,
                   const std::vector<std::string> &argv) override;

    void destroy_process(oskit::Process &proc) override { (void)proc; }

    uint64_t
    syscall_cost() const override
    {
        return CostModel::kLinuxSyscallCycles;
    }

    Result<oskit::FilePtr> fs_open(oskit::Process &proc,
                                   const std::string &path,
                                   uint64_t flags) override;
    Status fs_unlink(const std::string &path) override;
    Status fs_mkdir(const std::string &path) override;

  private:
    uint64_t next_base_ = 0x10000000;
};

} // namespace occlum::baseline

#endif // OCCLUM_BASELINE_LINUX_SYSTEM_H
