/**
 * @file
 * Deterministic, seeded fault injection for the whole simulation
 * (DESIGN.md "Fault model"). One process-wide FaultSim singleton is
 * consulted at a fixed set of injection sites:
 *
 *  - sgx:    Platform::reserve_epc (EPC exhaustion on EADD) and the
 *            kernel scheduler's AEX storm (an asynchronous exit every
 *            N user instructions, exercising the SSA save/restore of
 *            the full register file including bound registers),
 *  - host:   BlockDevice::read_block / write_block (transient
 *            EAGAIN-shaped faults, hard EIO faults, torn writes that
 *            persist only a prefix, silent bit corruption) and
 *            NetSim::send / recv (segment loss with a retransmission
 *            delay, duplicate segments that burn link bandwidth,
 *            short reads),
 *  - libos:  nothing directly — EncFs sees the device faults through
 *            its bounded retry/backoff wrappers.
 *
 * Determinism invariant: every site draws from its own SplitMix64
 * stream derived from FaultPlan::seed, so a given (plan, workload)
 * pair produces the same injection sequence on every run — a failing
 * crash-monkey case replays from its seed alone. When no plan is
 * installed every check is a single predicted branch, draws nothing,
 * and never touches the simulated clock: simulated cycle counts are
 * bit-identical with faultsim compiled in but idle (asserted by the
 * faultsim ablation row in bench_ablation_optimizations).
 *
 * Plans come from the OCCLUM_FAULT_PLAN environment variable (parsed
 * on first use) or programmatically via install()/ScopedFaultPlan.
 * Per-site check/fire counters are exported through the src/trace
 * metrics registry as "faultsim.<site>.checks" / ".fires".
 */
#ifndef OCCLUM_FAULTSIM_FAULTSIM_H
#define OCCLUM_FAULTSIM_FAULTSIM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/rng.h"

namespace occlum::trace {
class Counter;
}

namespace occlum::faultsim {

/** Injection sites. Each has its own RNG stream and counters. */
enum class Site : size_t {
    kEpcReserve = 0,
    kAex,
    kDevRead,
    kDevWrite,
    kNetSend,
    kNetRecv,
};
constexpr size_t kSiteCount = 6;

const char *site_name(Site site);

/**
 * A fault plan: which sites misbehave, how often, and from which
 * seed. Probabilities are per check in [0, 1]; *_at fields are
 * one-shot 1-based check ordinals ("the k-th check fires"), the
 * crash-monkey's bisection knob. Zero everywhere means "armed but
 * quiet" (checks are counted, nothing fires, cycles unchanged).
 */
struct FaultPlan {
    uint64_t seed = 1;

    // ---- SGX ----------------------------------------------------------
    /** P(reserve_epc fails with kNoMem). */
    double epc_fail = 0.0;
    /** One-shot: the k-th reserve_epc check fails. */
    uint64_t epc_fail_at = 0;
    /** Inject an AEX every N user instructions (0 = off). */
    uint64_t aex_every = 0;
    /**
     * One-shot: inject a single AEX after N user instructions (0 =
     * off), the bisection knob for "an AEX at exactly this ordinal
     * breaks the run". Composable with aex_every: once the one-shot
     * fires the periodic storm (if any) takes over.
     */
    uint64_t aex_at = 0;

    // ---- Block device -------------------------------------------------
    double dev_read_transient = 0.0;  // EAGAIN-shaped, retryable
    double dev_read_fail = 0.0;       // hard EIO
    double dev_write_transient = 0.0;
    double dev_write_fail = 0.0;
    /** One-shot: the k-th write check fails hard. */
    uint64_t dev_write_fail_at = 0;
    /** Torn write: reports success, only the first half persists. */
    double torn_write = 0.0;
    /** One-shot: the k-th write check is torn. */
    uint64_t torn_write_at = 0;
    /** Silent corruption: reports success, bits flip on the way. */
    double corrupt_write = 0.0;

    // ---- Network ------------------------------------------------------
    /** Segment loss: delivery delayed by a retransmission timeout. */
    double net_drop = 0.0;
    /** Duplicate segment: extra link occupancy, receiver discards. */
    double net_dup = 0.0;
    /** Short read: recv capacity halved for this call. */
    double net_short_read = 0.0;

    /** True if any fault can ever fire. */
    bool any() const;

    /**
     * Parse "key=value" pairs separated by ';' or ',' (the
     * OCCLUM_FAULT_PLAN format), e.g.
     *   "seed=7;dev_write_fail_at=23;torn_write=0.01"
     * Unknown keys and malformed values are errors — a typo must not
     * silently disable a CI fault run.
     */
    static Result<FaultPlan> parse(const std::string &spec);
};

/** Outcome of a device-level fault check. */
enum class DevFault {
    kNone,
    kTransient, // EAGAIN-shaped: the caller may retry
    kHard,      // EIO: the caller must give up
    kTorn,      // write "succeeds" but only a prefix lands
    kCorrupt,   // write "succeeds" but bits flip
};

/** The process-wide injector. */
class FaultSim
{
  public:
    /** The singleton; loads OCCLUM_FAULT_PLAN on first use. */
    static FaultSim &instance();

    /** Arm `plan`: reseeds every site stream and zeroes counters. */
    void install(const FaultPlan &plan);
    /** Disarm: checks become no-ops again (counters keep values). */
    void clear();

    /**
     * Re-arm the installed plan from its seed: every site stream and
     * counter restarts exactly as if the plan had just been
     * installed. Tests that assert run-to-run determinism under an
     * ambient OCCLUM_FAULT_PLAN call this before each run so both
     * runs replay the identical fault schedule instead of consuming
     * one shared stream. No-op when no plan is active.
     */
    void
    reseed()
    {
        if (active_) {
            install(plan_);
        }
    }

    bool active() const { return active_; }
    const FaultPlan &plan() const { return plan_; }

    // ---- site checks ---------------------------------------------------
    /** EADD path: true = this EPC reservation fails with kNoMem. */
    bool epc_reserve_fails();

    /** Scheduler: instructions until the next injected AEX (0 = off).
     *  While the aex_at one-shot is pending it takes precedence; after
     *  it fires the period falls back to aex_every. */
    uint64_t
    aex_period() const
    {
        if (!active_) {
            return 0;
        }
        if (plan_.aex_at > 0 && !aex_at_consumed_) {
            return plan_.aex_at;
        }
        return plan_.aex_every;
    }
    /** Scheduler: an injection point was reached — consume a pending
     *  aex_at one-shot (called whether or not the system serviced the
     *  AEX; the Linux baseline's hook is a no-op but the ordinal has
     *  still passed). */
    void
    mark_injected_aex()
    {
        if (active_ && plan_.aex_at > 0) {
            aex_at_consumed_ = true;
        }
    }
    /** Bump the AEX fire counter (the scheduler injects, we count). */
    void count_injected_aex();

    DevFault dev_read_fault();
    DevFault dev_write_fault();
    /** Deterministically flip bits of a corrupted write. */
    void scramble(uint8_t *data, size_t len);

    bool net_drop_fires();
    bool net_dup_fires();
    /** Possibly-shortened recv capacity (>= 1 when cap >= 1). */
    size_t net_recv_cap(size_t cap);

    // ---- observability -------------------------------------------------
    uint64_t
    checks(Site site) const
    {
        return checks_[static_cast<size_t>(site)];
    }
    uint64_t
    fires(Site site) const
    {
        return fires_[static_cast<size_t>(site)];
    }

  private:
    FaultSim();
    FaultSim(const FaultSim &) = delete;
    FaultSim &operator=(const FaultSim &) = delete;

    /** Count a check at `site`; true if probability `p` fires. */
    bool roll(Site site, double p);
    /** True (and counted) if this check is the one-shot ordinal. */
    bool at_hits(Site site, uint64_t at) const;
    void fire(Site site);

    FaultPlan plan_;
    bool active_ = false;
    /** The aex_at one-shot already fired this plan. */
    bool aex_at_consumed_ = false;
    std::array<Rng, kSiteCount> rngs_;
    std::array<uint64_t, kSiteCount> checks_{};
    std::array<uint64_t, kSiteCount> fires_{};
    std::array<trace::Counter *, kSiteCount> ctr_checks_{};
    std::array<trace::Counter *, kSiteCount> ctr_fires_{};
};

/**
 * RAII plan for tests: installs on construction, restores the
 * previous state (including "no plan") on destruction.
 */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan)
        : prev_plan_(FaultSim::instance().plan()),
          prev_active_(FaultSim::instance().active())
    {
        FaultSim::instance().install(plan);
    }

    ~ScopedFaultPlan()
    {
        if (prev_active_) {
            FaultSim::instance().install(prev_plan_);
        } else {
            FaultSim::instance().clear();
        }
    }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    FaultPlan prev_plan_;
    bool prev_active_;
};

} // namespace occlum::faultsim

#endif // OCCLUM_FAULTSIM_FAULTSIM_H
