#include "faultsim/faultsim.h"

#include <cstdlib>

#include "base/log.h"
#include "trace/metrics.h"

namespace occlum::faultsim {

const char *
site_name(Site site)
{
    switch (site) {
      case Site::kEpcReserve: return "epc_reserve";
      case Site::kAex: return "aex";
      case Site::kDevRead: return "dev_read";
      case Site::kDevWrite: return "dev_write";
      case Site::kNetSend: return "net_send";
      case Site::kNetRecv: return "net_recv";
    }
    return "?";
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

bool
FaultPlan::any() const
{
    return epc_fail > 0 || epc_fail_at > 0 || aex_every > 0 ||
           aex_at > 0 ||
           dev_read_transient > 0 || dev_read_fail > 0 ||
           dev_write_transient > 0 || dev_write_fail > 0 ||
           dev_write_fail_at > 0 || torn_write > 0 || torn_write_at > 0 ||
           corrupt_write > 0 || net_drop > 0 || net_dup > 0 ||
           net_short_read > 0;
}

namespace {

Status
set_field(FaultPlan &plan, const std::string &key,
          const std::string &value)
{
    auto as_u64 = [&](uint64_t &out) -> Status {
        size_t used = 0;
        unsigned long long v = 0;
        try {
            v = std::stoull(value, &used);
        } catch (...) {
            return Status(ErrorCode::kInval,
                          "fault plan: bad integer for " + key);
        }
        if (used != value.size()) {
            return Status(ErrorCode::kInval,
                          "fault plan: bad integer for " + key);
        }
        out = v;
        return Status();
    };
    auto as_prob = [&](double &out) -> Status {
        size_t used = 0;
        double v = 0;
        try {
            v = std::stod(value, &used);
        } catch (...) {
            return Status(ErrorCode::kInval,
                          "fault plan: bad number for " + key);
        }
        if (used != value.size() || v < 0.0 || v > 1.0) {
            return Status(ErrorCode::kInval,
                          "fault plan: " + key +
                              " must be a probability in [0,1]");
        }
        out = v;
        return Status();
    };

    if (key == "seed") return as_u64(plan.seed);
    if (key == "epc_fail") return as_prob(plan.epc_fail);
    if (key == "epc_fail_at") return as_u64(plan.epc_fail_at);
    if (key == "aex_every") return as_u64(plan.aex_every);
    if (key == "aex_at") return as_u64(plan.aex_at);
    if (key == "dev_read_transient")
        return as_prob(plan.dev_read_transient);
    if (key == "dev_read_fail") return as_prob(plan.dev_read_fail);
    if (key == "dev_write_transient")
        return as_prob(plan.dev_write_transient);
    if (key == "dev_write_fail") return as_prob(plan.dev_write_fail);
    if (key == "dev_write_fail_at") return as_u64(plan.dev_write_fail_at);
    if (key == "torn_write") return as_prob(plan.torn_write);
    if (key == "torn_write_at") return as_u64(plan.torn_write_at);
    if (key == "corrupt_write") return as_prob(plan.corrupt_write);
    if (key == "net_drop") return as_prob(plan.net_drop);
    if (key == "net_dup") return as_prob(plan.net_dup);
    if (key == "net_short_read") return as_prob(plan.net_short_read);
    return Status(ErrorCode::kInval, "fault plan: unknown key " + key);
}

} // namespace

Result<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find_first_of(";,", pos);
        if (end == std::string::npos) {
            end = spec.size();
        }
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty()) {
            continue;
        }
        size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return Error(ErrorCode::kInval,
                         "fault plan: expected key=value, got " + item);
        }
        OCC_RETURN_IF_ERROR(
            set_field(plan, item.substr(0, eq), item.substr(eq + 1)));
    }
    return plan;
}

// ---------------------------------------------------------------------
// FaultSim
// ---------------------------------------------------------------------

FaultSim::FaultSim()
{
    auto &registry = trace::Registry::instance();
    for (size_t s = 0; s < kSiteCount; ++s) {
        std::string base =
            std::string("faultsim.") + site_name(static_cast<Site>(s));
        ctr_checks_[s] = &registry.counter(base + ".checks");
        ctr_fires_[s] = &registry.counter(base + ".fires");
    }
    const char *env = std::getenv("OCCLUM_FAULT_PLAN");
    if (env != nullptr && *env != '\0') {
        auto plan = FaultPlan::parse(env);
        // A typo'd plan silently ignored would make a CI fault run
        // vacuous; fail loudly instead.
        OCC_CHECK_MSG(plan.ok(), "OCCLUM_FAULT_PLAN: "
                                     << plan.error().message);
        install(plan.value());
    }
}

FaultSim &
FaultSim::instance()
{
    static FaultSim sim;
    return sim;
}

void
FaultSim::install(const FaultPlan &plan)
{
    plan_ = plan;
    active_ = true;
    aex_at_consumed_ = false;
    // Independent per-site streams: injections at one site never
    // perturb another site's sequence, so e.g. adding disk faults to
    // a plan leaves its network fault schedule unchanged.
    for (size_t s = 0; s < kSiteCount; ++s) {
        rngs_[s] = Rng(plan.seed ^ (0x9e3779b97f4a7c15ull * (s + 1)));
    }
    checks_.fill(0);
    fires_.fill(0);
}

void
FaultSim::clear()
{
    active_ = false;
    aex_at_consumed_ = false;
}

bool
FaultSim::roll(Site site, double p)
{
    size_t s = static_cast<size_t>(site);
    ++checks_[s];
    ctr_checks_[s]->add();
    if (p <= 0.0) {
        // Still burn one draw so a site's sequence depends only on
        // its check ordinal, not on which probabilities are zero.
        rngs_[s].next();
        return false;
    }
    return rngs_[s].next_double() < p;
}

bool
FaultSim::at_hits(Site site, uint64_t at) const
{
    // Called after roll() bumped the counter: ordinal is 1-based.
    return at != 0 && checks_[static_cast<size_t>(site)] == at;
}

void
FaultSim::fire(Site site)
{
    size_t s = static_cast<size_t>(site);
    ++fires_[s];
    ctr_fires_[s]->add();
}

bool
FaultSim::epc_reserve_fails()
{
    if (!active_) {
        return false;
    }
    bool fires = roll(Site::kEpcReserve, plan_.epc_fail) ||
                 at_hits(Site::kEpcReserve, plan_.epc_fail_at);
    if (fires) {
        fire(Site::kEpcReserve);
    }
    return fires;
}

void
FaultSim::count_injected_aex()
{
    size_t s = static_cast<size_t>(Site::kAex);
    ++checks_[s];
    ctr_checks_[s]->add();
    fire(Site::kAex);
}

DevFault
FaultSim::dev_read_fault()
{
    if (!active_) {
        return DevFault::kNone;
    }
    // One draw per check classifies the outcome: the probabilities
    // partition [0,1), so a site's sequence depends only on its seed
    // and check ordinal, never on which knobs are set.
    size_t s = static_cast<size_t>(Site::kDevRead);
    ++checks_[s];
    ctr_checks_[s]->add();
    double draw = rngs_[s].next_double();
    DevFault result = DevFault::kNone;
    if (draw < plan_.dev_read_transient) {
        result = DevFault::kTransient;
    } else if (draw < plan_.dev_read_transient + plan_.dev_read_fail) {
        result = DevFault::kHard;
    }
    if (result != DevFault::kNone) {
        fire(Site::kDevRead);
    }
    return result;
}

DevFault
FaultSim::dev_write_fault()
{
    if (!active_) {
        return DevFault::kNone;
    }
    size_t s = static_cast<size_t>(Site::kDevWrite);
    ++checks_[s];
    ctr_checks_[s]->add();
    double draw = rngs_[s].next_double();
    DevFault result = DevFault::kNone;
    // One-shot ordinals override the probabilistic classification
    // (the crash-monkey's "fail exactly the k-th write" knob).
    if (at_hits(Site::kDevWrite, plan_.dev_write_fail_at)) {
        result = DevFault::kHard;
    } else if (at_hits(Site::kDevWrite, plan_.torn_write_at)) {
        result = DevFault::kTorn;
    } else {
        double p0 = plan_.dev_write_transient;
        double p1 = p0 + plan_.dev_write_fail;
        double p2 = p1 + plan_.torn_write;
        double p3 = p2 + plan_.corrupt_write;
        if (draw < p0) {
            result = DevFault::kTransient;
        } else if (draw < p1) {
            result = DevFault::kHard;
        } else if (draw < p2) {
            result = DevFault::kTorn;
        } else if (draw < p3) {
            result = DevFault::kCorrupt;
        }
    }
    if (result != DevFault::kNone) {
        fire(Site::kDevWrite);
    }
    return result;
}

void
FaultSim::scramble(uint8_t *data, size_t len)
{
    // Deterministic corruption: flip one bit in each of a handful of
    // bytes chosen by the dev-write stream. Guaranteed to change the
    // content (a corrupt write that lands intact would be a no-op).
    if (len == 0) {
        return;
    }
    Rng &rng = rngs_[static_cast<size_t>(Site::kDevWrite)];
    size_t flips = 1 + rng.next_below(15);
    for (size_t i = 0; i < flips; ++i) {
        size_t byte = rng.next_below(len);
        data[byte] ^= static_cast<uint8_t>(1u << rng.next_below(8));
    }
}

bool
FaultSim::net_drop_fires()
{
    if (!active_) {
        return false;
    }
    bool fires = roll(Site::kNetSend, plan_.net_drop);
    if (fires) {
        fire(Site::kNetSend);
    }
    return fires;
}

bool
FaultSim::net_dup_fires()
{
    if (!active_) {
        return false;
    }
    // Reuses the send-site stream: drop and dup are alternatives for
    // the same segment, checked back to back.
    bool fires = roll(Site::kNetSend, plan_.net_dup);
    if (fires) {
        fire(Site::kNetSend);
    }
    return fires;
}

size_t
FaultSim::net_recv_cap(size_t cap)
{
    if (!active_ || cap <= 1) {
        return cap;
    }
    if (roll(Site::kNetRecv, plan_.net_short_read)) {
        fire(Site::kNetRecv);
        return cap / 2; // >= 1 because cap > 1: progress guaranteed
    }
    return cap;
}

} // namespace occlum::faultsim
