#include "verifier/verifier.h"

#include <cstring>
#include <deque>
#include <set>
#include <unordered_map>

#include "base/log.h"
#include "oelf/abi.h"

namespace occlum::verifier {

using isa::Instruction;
using isa::Opcode;
using isa::TransferKind;

namespace {

/** Downward slack assumed for sp at every cfi_label (see oskit). */
constexpr int64_t kSpSlack = 2048;
/** Guard-region size (must match oelf::kGuardSize). */
constexpr int64_t kGuard = 4096;
/** Widest single memory access. */
constexpr int64_t kMaxAccess = 8;
/** Join budget per instruction before widening to Top. */
constexpr int kMaxJoins = 24;

// ---------------------------------------------------------------------
// Abstract values: intervals in absolute or domain-relative coordinates
// ---------------------------------------------------------------------

struct AbsVal {
    enum class Kind { kTop, kConst, kDomRel };
    Kind kind = Kind::kTop;
    int64_t lo = 0;
    int64_t hi = 0;

    static AbsVal
    top()
    {
        return AbsVal{};
    }

    static AbsVal
    constant(int64_t lo, int64_t hi)
    {
        AbsVal v;
        v.kind = Kind::kConst;
        v.lo = lo;
        v.hi = hi;
        return v;
    }

    static AbsVal
    dom(int64_t lo, int64_t hi)
    {
        AbsVal v;
        v.kind = Kind::kDomRel;
        v.lo = lo;
        v.hi = hi;
        return v;
    }

    bool is_top() const { return kind == Kind::kTop; }

    bool
    operator==(const AbsVal &o) const
    {
        if (kind != o.kind) return false;
        if (kind == Kind::kTop) return true;
        return lo == o.lo && hi == o.hi;
    }
};

constexpr int64_t kWidthCap = 1ll << 40;

AbsVal
normalize(AbsVal v)
{
    if (v.kind != AbsVal::Kind::kTop &&
        (v.hi < v.lo || v.hi - v.lo > kWidthCap)) {
        return AbsVal::top();
    }
    return v;
}

/** Saturating add of a constant interval. */
AbsVal
shift(AbsVal v, int64_t lo_delta, int64_t hi_delta)
{
    if (v.is_top()) return v;
    // Interval endpoints are small in practice (domain offsets);
    // saturate defensively.
    __int128 lo = static_cast<__int128>(v.lo) + lo_delta;
    __int128 hi = static_cast<__int128>(v.hi) + hi_delta;
    if (lo < INT64_MIN / 2 || hi > INT64_MAX / 2) return AbsVal::top();
    v.lo = static_cast<int64_t>(lo);
    v.hi = static_cast<int64_t>(hi);
    return normalize(v);
}

AbsVal
add_vals(const AbsVal &a, const AbsVal &b)
{
    if (a.is_top() || b.is_top()) return AbsVal::top();
    if (a.kind == AbsVal::Kind::kDomRel &&
        b.kind == AbsVal::Kind::kDomRel) {
        return AbsVal::top(); // 2*base has no meaning
    }
    AbsVal out = shift(a, b.lo, b.hi);
    if (out.is_top()) return out;
    out.kind = (a.kind == AbsVal::Kind::kDomRel ||
                b.kind == AbsVal::Kind::kDomRel)
                   ? AbsVal::Kind::kDomRel
                   : AbsVal::Kind::kConst;
    return out;
}

AbsVal
sub_vals(const AbsVal &a, const AbsVal &b)
{
    if (a.is_top() || b.is_top()) return AbsVal::top();
    AbsVal out = shift(a, -b.hi, -b.lo);
    if (out.is_top()) return out;
    if (a.kind == AbsVal::Kind::kDomRel &&
        b.kind == AbsVal::Kind::kDomRel) {
        out.kind = AbsVal::Kind::kConst; // base cancels
    } else if (a.kind == AbsVal::Kind::kConst &&
               b.kind == AbsVal::Kind::kDomRel) {
        return AbsVal::top();
    } else {
        out.kind = a.kind;
    }
    return out;
}

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    if (a.is_top() || b.is_top() || a.kind != b.kind) {
        if (a == b) return a;
        return AbsVal::top();
    }
    // No width cap here: a half-bounded interval produced by a lone
    // bndcl must survive the join at a loop head so the matching
    // bndcu can still narrow it. Divergence across fixpoint rounds is
    // handled by the per-instruction join-count widening instead.
    AbsVal v;
    v.kind = a.kind;
    v.lo = std::min(a.lo, b.lo);
    v.hi = std::max(a.hi, b.hi);
    return v;
}

AbsVal
intersect(const AbsVal &a, int64_t lo, int64_t hi, AbsVal::Kind kind)
{
    // Note: no width cap here — a lone bndcl legitimately yields a
    // half-bounded interval that the matching bndcu then narrows.
    if (a.is_top()) {
        AbsVal v;
        v.kind = kind;
        v.lo = lo;
        v.hi = hi;
        return v.hi < v.lo ? AbsVal::top() : v;
    }
    if (a.kind != kind) {
        // Representations differ (e.g. a constant address checked
        // against the runtime domain bounds). The check proves the
        // value lies in [lo, hi] on every non-faulting path, which is
        // a true fact on its own; adopt it and drop the old view.
        AbsVal v;
        v.kind = kind;
        v.lo = lo;
        v.hi = hi;
        return v.hi < v.lo ? AbsVal::top() : v;
    }
    AbsVal v = a;
    v.lo = std::max(v.lo, lo);
    v.hi = std::min(v.hi, hi);
    if (v.hi < v.lo) {
        // Contradiction: this path cannot execute past the check at
        // runtime (the check faults). Keep the empty-ish interval
        // pinned to the bound so downstream checks pass vacuously.
        v.lo = lo;
        v.hi = lo;
    }
    return v;
}

/** Per-instruction-entry machine state. */
struct State {
    std::array<AbsVal, isa::kNumRegs> regs;
    bool reachable = false;
};

State
join_states(const State &a, const State &b)
{
    State out;
    out.reachable = true;
    for (int i = 0; i < isa::kNumRegs; ++i) {
        out.regs[i] = join(a.regs[i], b.regs[i]);
    }
    return out;
}

bool
states_equal(const State &a, const State &b)
{
    for (int i = 0; i < isa::kNumRegs; ++i) {
        if (!(a.regs[i] == b.regs[i])) return false;
    }
    return true;
}

/** The whole verification context. */
class Analysis
{
  public:
    Analysis(const oelf::Image &image)
        : image_(image),
          code_(image.code),
          code_base_(oelf::Image::code_offset()),
          d_off_(static_cast<int64_t>(image.data_offset())),
          d_size_(static_cast<int64_t>(image.data_region_size()))
    {}

    VerifyReport run();

  private:
    // Stage implementations.
    VerifyReport stage1_disassemble();
    VerifyReport stage2_instruction_set();
    VerifyReport stage3_control_transfers();
    VerifyReport stage4_memory_accesses();

    const Instruction *instr_at(uint64_t off) const;
    /** Instruction immediately before `off` in address order. */
    const Instruction *prev_instr(uint64_t off) const;

    bool
    is_unconditional_stop(Opcode op) const
    {
        switch (op) {
          case Opcode::kJmp:
          case Opcode::kJmpReg:
          case Opcode::kJmpMem:
          case Opcode::kRet:
          case Opcode::kRetImm:
          case Opcode::kHlt:
          case Opcode::kEexit:
            return true;
          default:
            return false;
        }
    }

    State label_state() const;
    /** Effective address of a memory operand under `state`. */
    AbsVal ea_of(const State &state, const isa::MemOperand &mem,
                 uint64_t instr_end) const;
    /** EA within [D - G, D + G)? */
    bool ea_in_window(const AbsVal &ea, int64_t access_size) const;
    /** sp within the cfi_label entry assumption? */
    bool sp_in_slack(const AbsVal &sp, int64_t push_adjust) const;
    /** Back-propagate `EA in [lo, hi]` into the one free register. */
    void refine_operand(State &state, const isa::MemOperand &mem,
                        uint64_t instr_end, int64_t lo, int64_t hi) const;
    /** Apply one instruction to the state (no policy checks). */
    void transfer(const Instruction &instr, State &state) const;

    const oelf::Image &image_;
    const Bytes &code_;
    uint64_t code_base_;
    int64_t d_off_;
    int64_t d_size_;

    std::map<uint64_t, Instruction> reachable_; // code offset -> instr
    std::vector<int64_t> owner_;                // byte -> instr offset
    std::set<uint64_t> labels_;                 // cfi_label offsets
    std::set<uint64_t> guard_exempt_loads_;     // cfi_guard member loads
    std::set<uint64_t> guard_interiors_;        // illegal direct targets
    std::unordered_map<uint64_t, State> in_states_;
    std::unordered_map<uint64_t, int> join_counts_;

    VerifyReport report_;
};

const Instruction *
Analysis::instr_at(uint64_t off) const
{
    auto it = reachable_.find(off);
    return it == reachable_.end() ? nullptr : &it->second;
}

const Instruction *
Analysis::prev_instr(uint64_t off) const
{
    if (off == 0 || off > code_.size()) {
        return nullptr;
    }
    int64_t owner = owner_[off - 1];
    if (owner < 0) {
        return nullptr;
    }
    const Instruction *instr = instr_at(static_cast<uint64_t>(owner));
    if (!instr || instr->address - code_base_ + instr->length != off) {
        return nullptr;
    }
    return instr;
}

VerifyReport
Analysis::stage1_disassemble()
{
    if (code_.empty()) {
        return VerifyReport::fail(1, "empty code segment");
    }
    owner_.assign(code_.size(), -1);

    // Roots: every cfi_label magic occurrence (paper Algorithm 1,
    // line 2) — plus the entry point, which must itself be a label.
    std::deque<uint64_t> worklist;
    for (size_t i = 0; i + isa::kCfiLabelSize <= code_.size(); ++i) {
        if (std::memcmp(code_.data() + i, isa::kCfiMagic, 4) == 0) {
            labels_.insert(i);
            worklist.push_back(i);
        }
    }
    if (!labels_.count(image_.entry_offset)) {
        return VerifyReport::fail(1, "entry point is not a cfi_label",
                                  image_.entry_offset);
    }

    while (!worklist.empty()) {
        uint64_t addr = worklist.front();
        worklist.pop_front();
        while (true) {
            if (addr >= code_.size()) {
                return VerifyReport::fail(
                    1, "control flows past the end of the code segment",
                    addr);
            }
            if (owner_[addr] == static_cast<int64_t>(addr)) {
                break; // already disassembled from here
            }
            auto decoded = isa::decode(code_.data(), code_.size(), addr,
                                       code_base_ + addr);
            if (!decoded.ok()) {
                return VerifyReport::fail(
                    1, "undecodable reachable bytes: " +
                           decoded.error().message,
                    addr);
            }
            Instruction instr = decoded.take();
            for (uint64_t b = addr; b < addr + instr.length; ++b) {
                if (owner_[b] != -1) {
                    return VerifyReport::fail(
                        1, "overlapping reachable instructions", addr);
                }
            }
            for (uint64_t b = addr; b < addr + instr.length; ++b) {
                owner_[b] = static_cast<int64_t>(addr);
            }
            Opcode op = instr.op;
            if (isa::transfer_kind(op) == TransferKind::kDirect) {
                uint64_t target = instr.direct_target();
                if (target < code_base_ ||
                    target >= code_base_ + code_.size()) {
                    return VerifyReport::fail(
                        1, "direct transfer outside the code region",
                        addr);
                }
                worklist.push_back(target - code_base_);
            }
            reachable_.emplace(addr, instr);
            if (is_unconditional_stop(op)) {
                break;
            }
            addr += instr.length;
        }
    }
    report_.reachable_instructions = reachable_.size();
    report_.cfi_labels = labels_.size();
    return VerifyReport{};
}

VerifyReport
Analysis::stage2_instruction_set()
{
    for (const auto &[addr, instr] : reachable_) {
        if (isa::is_dangerous(instr.op)) {
            return VerifyReport::fail(
                2, std::string("dangerous instruction: ") +
                       isa::opcode_name(instr.op),
                addr);
        }
    }
    return VerifyReport{};
}

VerifyReport
Analysis::stage3_control_transfers()
{
    // Register-indirect transfers need an immediately preceding
    // cfi_guard; record its members.
    for (const auto &[addr, instr] : reachable_) {
        TransferKind kind = isa::transfer_kind(instr.op);
        if (kind == TransferKind::kMemoryIndirect) {
            return VerifyReport::fail(
                3, "memory-based indirect transfer", addr);
        }
        if (kind == TransferKind::kReturn) {
            return VerifyReport::fail(3, "return instruction", addr);
        }
        if (kind != TransferKind::kRegisterIndirect) {
            continue;
        }
        uint8_t target_reg = instr.reg1;
        const Instruction *cu = prev_instr(addr);
        const Instruction *cl =
            cu ? prev_instr(cu->address - code_base_) : nullptr;
        const Instruction *load =
            cl ? prev_instr(cl->address - code_base_) : nullptr;
        bool ok = cu && cl && load &&
                  cu->op == Opcode::kBndcuReg &&
                  cu->bnd == isa::kBndCfi &&
                  cu->reg1 == isa::kScratch &&
                  cl->op == Opcode::kBndclReg &&
                  cl->bnd == isa::kBndCfi &&
                  cl->reg1 == isa::kScratch &&
                  load->op == Opcode::kLoad &&
                  load->reg1 == isa::kScratch &&
                  load->mem.mode == isa::AddrMode::kBaseDisp &&
                  load->mem.base == target_reg && load->mem.disp == 0;
        if (!ok) {
            return VerifyReport::fail(
                3, "register-indirect transfer without cfi_guard", addr);
        }
        guard_exempt_loads_.insert(load->address - code_base_);
        // Interior members (jumping past the load skips the check).
        guard_interiors_.insert(cl->address - code_base_);
        guard_interiors_.insert(cu->address - code_base_);
        guard_interiors_.insert(addr);
    }

    // Direct transfers.
    for (const auto &[addr, instr] : reachable_) {
        if (isa::transfer_kind(instr.op) != TransferKind::kDirect) {
            continue;
        }
        uint64_t target = instr.direct_target() - code_base_;
        const Instruction *ti = instr_at(target);
        if (!ti) {
            return VerifyReport::fail(
                3, "direct transfer into the middle of an instruction",
                addr);
        }
        if (isa::transfer_kind(ti->op) ==
            TransferKind::kRegisterIndirect) {
            return VerifyReport::fail(
                3, "direct transfer targets an indirect transfer", addr);
        }
        if (guard_interiors_.count(target)) {
            return VerifyReport::fail(
                3, "direct transfer into a cfi_guard sequence", addr);
        }
    }
    return VerifyReport{};
}

State
Analysis::label_state() const
{
    State state;
    state.reachable = true;
    state.regs[isa::kSp] =
        AbsVal::dom(d_off_ - kSpSlack, d_off_ + d_size_ - 1 + kSpSlack);
    return state;
}

AbsVal
Analysis::ea_of(const State &state, const isa::MemOperand &mem,
                uint64_t instr_end) const
{
    switch (mem.mode) {
      case isa::AddrMode::kBaseDisp:
        return shift(state.regs[mem.base], mem.disp, mem.disp);
      case isa::AddrMode::kSib: {
        AbsVal index = state.regs[mem.index];
        if (index.kind != AbsVal::Kind::kConst) {
            return AbsVal::top();
        }
        __int128 ilo = static_cast<__int128>(index.lo)
                       << mem.scale_log2;
        __int128 ihi = static_cast<__int128>(index.hi)
                       << mem.scale_log2;
        if (ilo < INT64_MIN / 2 || ihi > INT64_MAX / 2) {
            return AbsVal::top();
        }
        AbsVal scaled = AbsVal::constant(static_cast<int64_t>(ilo),
                                         static_cast<int64_t>(ihi));
        return shift(add_vals(state.regs[mem.base], scaled), mem.disp,
                     mem.disp);
      }
      case isa::AddrMode::kRipRel:
        // Instruction addresses are already domain-relative.
        return AbsVal::dom(static_cast<int64_t>(instr_end) + mem.disp,
                           static_cast<int64_t>(instr_end) + mem.disp);
      case isa::AddrMode::kAbs:
        return AbsVal::constant(static_cast<int64_t>(mem.abs_addr),
                                static_cast<int64_t>(mem.abs_addr));
    }
    return AbsVal::top();
}

bool
Analysis::ea_in_window(const AbsVal &ea, int64_t access_size) const
{
    if (ea.kind != AbsVal::Kind::kDomRel) {
        return false;
    }
    return ea.lo >= d_off_ - kGuard &&
           ea.hi + access_size - 1 <= d_off_ + d_size_ - 1 + kGuard;
}

bool
Analysis::sp_in_slack(const AbsVal &sp, int64_t push_adjust) const
{
    if (sp.kind != AbsVal::Kind::kDomRel) {
        return false;
    }
    return sp.lo - push_adjust >= d_off_ - kSpSlack &&
           sp.hi <= d_off_ + d_size_ - 1 + kSpSlack;
}

void
Analysis::refine_operand(State &state, const isa::MemOperand &mem,
                         uint64_t instr_end, int64_t lo, int64_t hi) const
{
    switch (mem.mode) {
      case isa::AddrMode::kBaseDisp: {
        AbsVal &base = state.regs[mem.base];
        base = intersect(base, lo - mem.disp, hi - mem.disp,
                         AbsVal::Kind::kDomRel);
        break;
      }
      case isa::AddrMode::kSib: {
        const AbsVal &base = state.regs[mem.base];
        AbsVal &index = state.regs[mem.index];
        if (base.kind == AbsVal::Kind::kDomRel && base.lo == base.hi) {
            // EA = base + index*scale + disp in [lo, hi]
            int64_t scale = 1ll << mem.scale_log2;
            int64_t ilo = lo - base.lo - mem.disp;
            int64_t ihi = hi - base.lo - mem.disp;
            // Round inward toward the representable index range.
            int64_t idx_lo =
                (ilo >= 0 ? ilo + scale - 1 : ilo) / scale;
            int64_t idx_hi = (ihi >= 0 ? ihi : ihi - scale + 1) / scale;
            index = intersect(index, idx_lo, idx_hi,
                              AbsVal::Kind::kConst);
        }
        break;
      }
      case isa::AddrMode::kRipRel:
      case isa::AddrMode::kAbs:
        break;
      default:
        break;
    }
    (void)instr_end;
}

void
Analysis::transfer(const Instruction &instr, State &state) const
{
    auto &regs = state.regs;
    // Domain-relative end address (instr.address is domain-relative).
    uint64_t end_off = instr.address + instr.length;
    int64_t d_lo = d_off_;
    int64_t d_hi = d_off_ + d_size_ - 1;

    switch (instr.op) {
      case Opcode::kMovRI:
        regs[instr.reg1] = AbsVal::constant(instr.imm, instr.imm);
        break;
      case Opcode::kMovRR:
        regs[instr.reg1] = regs[instr.reg2];
        break;
      case Opcode::kAddRI:
        regs[instr.reg1] = shift(regs[instr.reg1], instr.imm, instr.imm);
        break;
      case Opcode::kSubRI:
        regs[instr.reg1] =
            shift(regs[instr.reg1], -instr.imm, -instr.imm);
        break;
      case Opcode::kAddRR:
        regs[instr.reg1] =
            add_vals(regs[instr.reg1], regs[instr.reg2]);
        break;
      case Opcode::kSubRR:
        regs[instr.reg1] =
            sub_vals(regs[instr.reg1], regs[instr.reg2]);
        break;
      case Opcode::kMulRI: {
        AbsVal v = regs[instr.reg1];
        if (v.kind == AbsVal::Kind::kConst && instr.imm >= 0 &&
            instr.imm < (1 << 20)) {
            __int128 lo = static_cast<__int128>(v.lo) * instr.imm;
            __int128 hi = static_cast<__int128>(v.hi) * instr.imm;
            if (lo >= INT64_MIN / 2 && hi <= INT64_MAX / 2) {
                regs[instr.reg1] = normalize(AbsVal::constant(
                    static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
                break;
            }
        }
        regs[instr.reg1] = AbsVal::top();
        break;
      }
      case Opcode::kShlRI: {
        AbsVal v = regs[instr.reg1];
        if (v.kind == AbsVal::Kind::kConst && instr.imm <= 20 &&
            v.lo >= -(1ll << 40) && v.hi <= (1ll << 40)) {
            regs[instr.reg1] = normalize(AbsVal::constant(
                v.lo << instr.imm, v.hi << instr.imm));
        } else {
            regs[instr.reg1] = AbsVal::top();
        }
        break;
      }
      case Opcode::kLea:
        regs[instr.reg1] = ea_of(state, instr.mem, end_off);
        break;

      case Opcode::kLoad:
      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kVGather:
      case Opcode::kRdcycle:
      case Opcode::kMulRR:
      case Opcode::kDivRR:
      case Opcode::kModRR:
      case Opcode::kAndRR:
      case Opcode::kAndRI:
      case Opcode::kOrRR:
      case Opcode::kOrRI:
      case Opcode::kXorRR:
      case Opcode::kXorRI:
      case Opcode::kShrRI:
      case Opcode::kSarRI:
      case Opcode::kShlRR:
      case Opcode::kShrRR:
      case Opcode::kSarRR:
      case Opcode::kNeg:
      case Opcode::kNot:
        regs[instr.reg1] = AbsVal::top();
        break;

      case Opcode::kStore:
      case Opcode::kStore8:
      case Opcode::kStore32: {
        // Post-success refinement: a non-faulting access proved the
        // EA inside D (the window minus D is unmapped guard space).
        refine_operand(state, instr.mem, end_off, d_lo, d_hi);
        break;
      }

      case Opcode::kBndclMem:
        if (instr.bnd == isa::kBndData) {
            refine_operand(state, instr.mem, end_off, d_lo, INT64_MAX / 4);
        }
        break;
      case Opcode::kBndcuMem:
        if (instr.bnd == isa::kBndData) {
            refine_operand(state, instr.mem, end_off, INT64_MIN / 4, d_hi);
        }
        break;
      case Opcode::kBndclReg:
      case Opcode::kBndcuReg:
        break; // cfi_guard equality checks: no address information

      case Opcode::kPush:
      case Opcode::kPushImm: {
        AbsVal &sp = regs[isa::kSp];
        sp = intersect(sp, d_lo + 8, d_hi + 8, AbsVal::Kind::kDomRel);
        sp = shift(sp, -8, -8);
        break;
      }
      case Opcode::kPop: {
        AbsVal &sp = regs[isa::kSp];
        sp = intersect(sp, d_lo, d_hi, AbsVal::Kind::kDomRel);
        sp = shift(sp, 8, 8);
        regs[instr.reg1] = AbsVal::top();
        break;
      }
      case Opcode::kCall: {
        AbsVal &sp = regs[isa::kSp];
        sp = intersect(sp, d_lo + 8, d_hi + 8, AbsVal::Kind::kDomRel);
        sp = shift(sp, -8, -8);
        break;
      }
      default:
        break;
    }

    // Loads with refinement of their own operand (post-success).
    if (instr.op == Opcode::kLoad || instr.op == Opcode::kLoad8 ||
        instr.op == Opcode::kLoad32) {
        refine_operand(state, instr.mem, end_off, d_lo, d_hi);
    }
}

VerifyReport
Analysis::stage4_memory_accesses()
{
    // ---- phase A: fixpoint propagation ------------------------------
    std::deque<uint64_t> worklist;
    auto seed = [&](uint64_t off) {
        in_states_[off] = label_state();
        worklist.push_back(off);
    };
    for (uint64_t label : labels_) {
        if (reachable_.count(label)) {
            seed(label);
        }
    }
    seed(image_.entry_offset);

    auto merge_into = [&](uint64_t target, const State &incoming) {
        if (labels_.count(target)) {
            return; // labels keep their fixed assumption
        }
        auto it = in_states_.find(target);
        if (it == in_states_.end()) {
            in_states_[target] = incoming;
            worklist.push_back(target);
            return;
        }
        State joined = join_states(it->second, incoming);
        if (!states_equal(joined, it->second)) {
            int &joins = join_counts_[target];
            if (++joins > kMaxJoins) {
                // Widen: anything still changing goes to Top (sp too;
                // a Top sp will fail the checks and reject).
                for (int i = 0; i < isa::kNumRegs; ++i) {
                    if (!(joined.regs[i] == it->second.regs[i])) {
                        joined.regs[i] = AbsVal::top();
                    }
                }
            }
            if (!states_equal(joined, it->second)) {
                it->second = joined;
                worklist.push_back(target);
            }
        }
    };

    uint64_t iterations = 0;
    const uint64_t budget = 200ull * std::max<size_t>(
        reachable_.size(), 1) + 10000;
    while (!worklist.empty()) {
        if (++iterations > budget) {
            return VerifyReport::fail(
                4, "range analysis failed to converge");
        }
        uint64_t off = worklist.front();
        worklist.pop_front();
        State state = in_states_.at(off);
        const Instruction *instr = instr_at(off);
        if (!instr) {
            continue;
        }
        transfer(*instr, state);
        uint64_t next = off + instr->length;
        TransferKind kind = isa::transfer_kind(instr->op);
        if (kind == TransferKind::kDirect) {
            uint64_t target = instr->direct_target() - code_base_;
            if (instr->op != Opcode::kCall) {
                merge_into(target, state);
            }
            // call: the callee entry is a label (fixed state); the
            // return site is entered via the ret-rewrite (label too).
            if (instr->op == Opcode::kJcc) {
                merge_into(next, state);
            }
        } else if (kind == TransferKind::kNone &&
                   !is_unconditional_stop(instr->op)) {
            if (reachable_.count(next)) {
                merge_into(next, state);
            }
        }
        // Register-indirect transfers: targets are labels.
    }

    // ---- phase B: policy checks against the fixpoint ------------------
    if (const char *trace = getenv("OCC_VERIFIER_TRACE")) {
        uint64_t want = strtoull(trace, nullptr, 10);
        for (uint64_t o = want > 40 ? want - 40 : 0; o <= want + 8; ++o) {
            auto iit = reachable_.find(o);
            if (iit == reachable_.end()) continue;
            auto sit = in_states_.find(o);
            std::fprintf(stderr, "%llu: %s |", (unsigned long long)o,
                         isa::to_string(iit->second).c_str());
            if (sit == in_states_.end()) { std::fprintf(stderr, " NO STATE\n"); continue; }
            for (int r = 0; r < 16; ++r) {
                const AbsVal &v = sit->second.regs[r];
                if (!v.is_top())
                    std::fprintf(stderr, " r%d=%s[%lld,%lld]", r,
                                 v.kind == AbsVal::Kind::kDomRel ? "D" : "C",
                                 (long long)v.lo, (long long)v.hi);
            }
            std::fprintf(stderr, "\n");
        }
    }
    for (const auto &[off, instr] : reachable_) {
        auto it = in_states_.find(off);
        if (it == in_states_.end() || !it->second.reachable) {
            continue; // dataflow-unreachable (e.g. code after exit)
        }
        const State &state = it->second;
        // Two coordinate systems: EA math is domain-relative
        // (instr.address includes the trampoline page); label lookup
        // and fallthrough use code offsets.
        uint64_t end_off = instr.address + instr.length;
        uint64_t end_code = off + instr.length;

        // Explicit memory accesses (paper Fig. 4).
        if (isa::explicit_mem_access(instr.op)) {
            if (instr.op == Opcode::kVGather) {
                return VerifyReport::fail(4, "vector-SIB access", off);
            }
            if (instr.mem.mode == isa::AddrMode::kAbs) {
                return VerifyReport::fail(
                    4, "direct-memory-offset access", off);
            }
            if (guard_exempt_loads_.count(off)) {
                ++report_.guarded_accesses;
            } else {
                int64_t size = instr.op == Opcode::kLoad8 ||
                                       instr.op == Opcode::kStore8
                                   ? 1
                               : instr.op == Opcode::kLoad32 ||
                                       instr.op == Opcode::kStore32
                                   ? 4
                                   : kMaxAccess;
                AbsVal ea = ea_of(state, instr.mem, end_off);
                if (!ea_in_window(ea, size)) {
                    std::string detail = " [ea kind=" +
                        std::to_string(static_cast<int>(ea.kind)) +
                        " lo=" + std::to_string(ea.lo) +
                        " hi=" + std::to_string(ea.hi) +
                        " base r" + std::to_string(instr.mem.base) +
                        " kind=" + std::to_string(static_cast<int>(
                            state.regs[instr.mem.base].kind)) +
                        " lo=" + std::to_string(
                            state.regs[instr.mem.base].lo) +
                        " hi=" + std::to_string(
                            state.regs[instr.mem.base].hi) + "]";
                    return VerifyReport::fail(
                        4,
                        "unprovable memory access: " +
                            isa::to_string(instr) + detail,
                        off);
                }
                ++report_.checked_accesses;
            }
        }

        // Implicit stack accesses.
        if (instr.op == Opcode::kPush || instr.op == Opcode::kPushImm ||
            instr.op == Opcode::kCall ||
            instr.op == Opcode::kCallReg) {
            AbsVal slot = shift(state.regs[isa::kSp], -8, -8);
            if (!ea_in_window(slot, 8)) {
                return VerifyReport::fail(
                    4, "unprovable stack push", off);
            }
        }
        if (instr.op == Opcode::kPop) {
            if (!ea_in_window(state.regs[isa::kSp], 8)) {
                return VerifyReport::fail(4, "unprovable stack pop", off);
            }
        }

        // Guard checks with a memory operand compute an EA but do not
        // access memory; nothing to verify for them.

        // Edge conditions re-establishing the cfi_label sp invariant.
        TransferKind kind = isa::transfer_kind(instr.op);
        State after = state;
        transfer(instr, after);
        const AbsVal &sp_after = after.regs[isa::kSp];
        if (kind == TransferKind::kRegisterIndirect) {
            if (!sp_in_slack(sp_after, 0)) {
                return VerifyReport::fail(
                    4, "sp unprovable at indirect transfer", off);
            }
        } else if (kind == TransferKind::kDirect) {
            uint64_t target = instr.direct_target() - code_base_;
            if (labels_.count(target) || instr.op == Opcode::kCall) {
                if (!sp_in_slack(sp_after, 0)) {
                    return VerifyReport::fail(
                        4, "sp unprovable at transfer to label", off);
                }
            }
        } else if (kind == TransferKind::kNone &&
                   labels_.count(end_code)) {
            // Fallthrough into a cfi_label.
            if (!sp_in_slack(sp_after, 0)) {
                return VerifyReport::fail(
                    4, "sp unprovable falling into a label", off);
            }
        }
    }
    return VerifyReport{};
}

VerifyReport
Analysis::run()
{
    for (auto stage : {&Analysis::stage1_disassemble,
                       &Analysis::stage2_instruction_set,
                       &Analysis::stage3_control_transfers,
                       &Analysis::stage4_memory_accesses}) {
        VerifyReport result = (this->*stage)();
        if (result.failed_stage != 0) {
            result.reachable_instructions =
                report_.reachable_instructions;
            result.cfi_labels = report_.cfi_labels;
            return result;
        }
    }
    report_.ok = true;
    return report_;
}

} // namespace

VerifyReport
Verifier::verify(const oelf::Image &image) const
{
    if (image.code.size() > (64ull << 20)) {
        return VerifyReport::fail(1, "code segment too large");
    }
    if (image.code_region_size() <
        ((image.code.size() + vm::kPageMask) & ~vm::kPageMask)) {
        return VerifyReport::fail(1, "code exceeds its reservation");
    }
    Analysis analysis(image);
    return analysis.run();
}

Result<oelf::Image>
Verifier::verify_and_sign(const oelf::Image &image) const
{
    VerifyReport report = verify(image);
    if (!report.ok) {
        return Error(ErrorCode::kNoExec,
                     "verification failed (stage " +
                         std::to_string(report.failed_stage) +
                         "): " + report.reason);
    }
    oelf::Image signed_image = image;
    signed_image.sign(key_);
    return signed_image;
}

} // namespace occlum::verifier
