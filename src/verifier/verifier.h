/**
 * @file
 * The Occlum verifier (paper §5): an independent static checker that
 * decides whether an OELF binary complies with the MMDSFI security
 * policies, taking the (large, untrusted) toolchain out of the TCB.
 *
 * Four stages:
 *  1. Complete disassembly (paper Algorithm 1): every reachable
 *     instruction is recovered exactly, starting from the cfi_labels
 *     found by a byte scan; overlapping or undecodable reachable
 *     bytes reject the binary.
 *  2. Instruction-set verification: no dangerous instructions
 *     (SGX analogs, MPX mutation, state-smashing ops, ltrap).
 *  3. Control-transfer verification (paper Fig. 3): direct transfers
 *     target verified instruction starts that are neither register-
 *     indirect transfers nor the interior of a cfi_guard sequence;
 *     register-indirect transfers are immediately preceded by a
 *     cfi_guard; memory-indirect and return instructions are
 *     rejected (the toolchain rewrites `ret`).
 *  4. Memory-access verification (paper Fig. 4): an interprocedural-
 *     free, per-block dataflow range analysis in domain-relative
 *     coordinates proves every explicit access and every implicit
 *     stack access lands inside the guard-extended data region
 *     [D.begin - G, D.end + G). Direct-memory-offset and vector-SIB
 *     accesses are rejected categorically.
 *
 * A binary that passes all stages may be signed with the verifier's
 * key; the Occlum LibOS loader only accepts signed images (paper §6).
 */
#ifndef OCCLUM_VERIFIER_VERIFIER_H
#define OCCLUM_VERIFIER_VERIFIER_H

#include <map>
#include <string>

#include "crypto/hmac.h"
#include "isa/isa.h"
#include "oelf/oelf.h"

namespace occlum::verifier {

/** Outcome of a verification run. */
struct VerifyReport {
    bool ok = false;
    int failed_stage = 0;   // 1..4, 0 when ok
    std::string reason;     // human-readable failure description
    uint64_t fail_address = 0; // offending instruction (domain-relative)

    // Diagnostics.
    uint64_t reachable_instructions = 0;
    uint64_t cfi_labels = 0;
    uint64_t checked_accesses = 0;   // proven by range analysis
    uint64_t guarded_accesses = 0;   // proven via an explicit mem_guard

    static VerifyReport
    fail(int stage, std::string why, uint64_t address = 0)
    {
        VerifyReport r;
        r.failed_stage = stage;
        r.reason = std::move(why);
        r.fail_address = address;
        return r;
    }
};

/** The verifier: stateless apart from its signing key. */
class Verifier
{
  public:
    explicit Verifier(crypto::Key128 signing_key)
        : key_(signing_key)
    {}

    /** Run all four stages. */
    VerifyReport verify(const oelf::Image &image) const;

    /** verify() and, on success, return a signed copy of the image. */
    Result<oelf::Image> verify_and_sign(const oelf::Image &image) const;

    const crypto::Key128 &key() const { return key_; }

  private:
    crypto::Key128 key_;
};

} // namespace occlum::verifier

#endif // OCCLUM_VERIFIER_VERIFIER_H
