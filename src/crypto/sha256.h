/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for enclave measurement (EEXTEND), OELF content digests, and as
 * the compression function under HMAC. Tested against the FIPS/NIST
 * vectors in tests/crypto_test.cc.
 */
#ifndef OCCLUM_CRYPTO_SHA256_H
#define OCCLUM_CRYPTO_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "base/bytes.h"

namespace occlum::crypto {

/** A 32-byte SHA-256 digest. */
using Sha256Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb `len` bytes. */
    void update(const uint8_t *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finalize and return the digest; the hasher must be reset after. */
    Sha256Digest finish();

    /** One-shot convenience. */
    static Sha256Digest
    digest(const uint8_t *data, size_t len)
    {
        Sha256 h;
        h.update(data, len);
        return h.finish();
    }

    static Sha256Digest
    digest(const Bytes &data)
    {
        return digest(data.data(), data.size());
    }

  private:
    void compress(const uint8_t block[64]);

    uint32_t state_[8];
    uint8_t buffer_[64];
    size_t buffered_ = 0;
    uint64_t total_len_ = 0;
};

} // namespace occlum::crypto

#endif // OCCLUM_CRYPTO_SHA256_H
