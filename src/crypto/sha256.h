/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for enclave measurement (EEXTEND), OELF content digests, and as
 * the compression function under HMAC. Tested against the FIPS/NIST
 * vectors in tests/crypto_test.cc.
 *
 * The compression loop is unrolled (8 rounds per step, no register
 * rotation chain) for throughput, and the hasher exposes a resumable
 * *midstate*: the 8-word chaining value at a 64-byte block boundary.
 * HmacKey caches the post-pad midstates so each MAC skips two
 * compressions, and sgx::Enclave resumes one persistent page hasher
 * from the initial midstate instead of constructing a hasher per
 * measured page.
 */
#ifndef OCCLUM_CRYPTO_SHA256_H
#define OCCLUM_CRYPTO_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "base/bytes.h"

namespace occlum::crypto {

/** A 32-byte SHA-256 digest. */
using Sha256Digest = std::array<uint8_t, 32>;

/**
 * A resumable SHA-256 state captured at a 64-byte block boundary:
 * the chaining value plus the number of bytes absorbed so far.
 * Capturing costs nothing; resuming replaces init + re-absorbing
 * `total_len` bytes with a 40-byte copy.
 */
struct Sha256Midstate {
    std::array<uint32_t, 8> state{};
    uint64_t total_len = 0;
};

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb `len` bytes. */
    void update(const uint8_t *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finalize and return the digest; the hasher must be reset after. */
    Sha256Digest finish();

    /**
     * Capture the current state as a midstate. Only valid on a block
     * boundary (no bytes buffered) — checked.
     */
    Sha256Midstate midstate() const;

    /** Restore a previously captured midstate (discards current state). */
    void resume(const Sha256Midstate &m);

    /** The midstate of a fresh hasher (total_len = 0). */
    static const Sha256Midstate &initial_midstate();

    /** One-shot convenience. */
    static Sha256Digest
    digest(const uint8_t *data, size_t len)
    {
        Sha256 h;
        h.update(data, len);
        return h.finish();
    }

    static Sha256Digest
    digest(const Bytes &data)
    {
        return digest(data.data(), data.size());
    }

  private:
    void compress(const uint8_t block[64]);

    uint32_t state_[8];
    uint8_t buffer_[64];
    size_t buffered_ = 0;
    uint64_t total_len_ = 0;
};

} // namespace occlum::crypto

#endif // OCCLUM_CRYPTO_SHA256_H
