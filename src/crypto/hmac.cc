#include "crypto/hmac.h"

#include <cstring>

namespace occlum::crypto {

Sha256Digest
hmac_sha256(const uint8_t *key, size_t key_len, const uint8_t *data,
            size_t data_len)
{
    uint8_t key_block[64] = {0};
    if (key_len > 64) {
        Sha256Digest kd = Sha256::digest(key, key_len);
        std::memcpy(key_block, kd.data(), kd.size());
    } else {
        std::memcpy(key_block, key, key_len);
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, data_len);
    Sha256Digest inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

bool
digest_equal(const Sha256Digest &a, const Sha256Digest &b)
{
    uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        diff |= a[i] ^ b[i];
    }
    return diff == 0;
}

} // namespace occlum::crypto
