#include "crypto/hmac.h"

#include <cstring>

namespace occlum::crypto {

namespace {

bool g_midstate_enabled = true;

} // namespace

void
HmacKey::set_midstate_enabled(bool enabled)
{
    g_midstate_enabled = enabled;
}

bool
HmacKey::midstate_enabled()
{
    return g_midstate_enabled;
}

HmacKey::HmacKey(const uint8_t *key, size_t key_len)
{
    uint8_t key_block[64] = {0};
    if (key_len > 64) {
        Sha256Digest kd = Sha256::digest(key, key_len);
        std::memcpy(key_block, kd.data(), kd.size());
    } else if (key_len > 0) {
        std::memcpy(key_block, key, key_len);
    }
    for (int i = 0; i < 64; ++i) {
        ipad_block_[i] = key_block[i] ^ 0x36;
        opad_block_[i] = key_block[i] ^ 0x5c;
    }
    // One compression each; mac()/begin()/finish() resume from here.
    Sha256 h;
    h.update(ipad_block_, 64);
    inner_ = h.midstate();
    h.reset();
    h.update(opad_block_, 64);
    outer_ = h.midstate();
}

Sha256
HmacKey::begin() const
{
    Sha256 h;
    if (g_midstate_enabled) {
        h.resume(inner_);
    } else {
        h.update(ipad_block_, 64);
    }
    return h;
}

Sha256Digest
HmacKey::finish(Sha256 &inner) const
{
    Sha256Digest inner_digest = inner.finish();
    Sha256 outer;
    if (g_midstate_enabled) {
        outer.resume(outer_);
    } else {
        outer.update(opad_block_, 64);
    }
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

Sha256Digest
HmacKey::mac(const uint8_t *data, size_t len) const
{
    Sha256 inner = begin();
    inner.update(data, len);
    return finish(inner);
}

Sha256Digest
hmac_sha256(const uint8_t *key, size_t key_len, const uint8_t *data,
            size_t data_len)
{
    uint8_t key_block[64] = {0};
    if (key_len > 64) {
        Sha256Digest kd = Sha256::digest(key, key_len);
        std::memcpy(key_block, kd.data(), kd.size());
    } else {
        std::memcpy(key_block, key, key_len);
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, data_len);
    Sha256Digest inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

bool
digest_equal(const Sha256Digest &a, const Sha256Digest &b)
{
    uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        diff |= a[i] ^ b[i];
    }
    return diff == 0;
}

Sha256Digest
hkdf_expand_label(const Sha256Digest &secret, const char *label)
{
    HmacKey key(secret.data(), secret.size());
    return key.mac(reinterpret_cast<const uint8_t *>(label),
                   std::strlen(label));
}

} // namespace occlum::crypto
