/**
 * @file
 * HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
 *
 * Used for: local-attestation report MACs, encrypted-FS block
 * authentication, and the verifier's signature over approved binaries.
 */
#ifndef OCCLUM_CRYPTO_HMAC_H
#define OCCLUM_CRYPTO_HMAC_H

#include "crypto/sha256.h"

namespace occlum::crypto {

/** A 16-byte symmetric key (matches SGX report key width). */
using Key128 = std::array<uint8_t, 16>;

/** Compute HMAC-SHA-256 over `data` with an arbitrary-length key. */
Sha256Digest hmac_sha256(const uint8_t *key, size_t key_len,
                         const uint8_t *data, size_t data_len);

inline Sha256Digest
hmac_sha256(const Bytes &key, const Bytes &data)
{
    return hmac_sha256(key.data(), key.size(), data.data(), data.size());
}

/** Constant-time digest comparison. */
bool digest_equal(const Sha256Digest &a, const Sha256Digest &b);

} // namespace occlum::crypto

#endif // OCCLUM_CRYPTO_HMAC_H
