/**
 * @file
 * HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
 *
 * Used for: local-attestation report MACs, encrypted-FS block
 * authentication, and the verifier's signature over approved binaries.
 *
 * Per-call hmac_sha256() derives the pads from the key every time —
 * fine for one-shot MACs. Hot paths that MAC many messages under one
 * key (EncFs: one MAC per 4 KiB block) use HmacKey, which hashes the
 * ipad/opad blocks once and caches the two SHA-256 midstates, saving
 * two compressions (1/3 of the fixed cost) per subsequent MAC. The
 * midstate cache can be disabled (ablation) — outputs are identical
 * either way.
 */
#ifndef OCCLUM_CRYPTO_HMAC_H
#define OCCLUM_CRYPTO_HMAC_H

#include "crypto/sha256.h"

namespace occlum::crypto {

/** A 16-byte symmetric key (matches SGX report key width). */
using Key128 = std::array<uint8_t, 16>;

/** Compute HMAC-SHA-256 over `data` with an arbitrary-length key. */
Sha256Digest hmac_sha256(const uint8_t *key, size_t key_len,
                         const uint8_t *data, size_t data_len);

inline Sha256Digest
hmac_sha256(const Bytes &key, const Bytes &data)
{
    return hmac_sha256(key.data(), key.size(), data.data(), data.size());
}

/**
 * A reusable HMAC-SHA-256 key: the inner (key^ipad) and outer
 * (key^opad) blocks are absorbed once at construction and their
 * midstates cached, so mac() costs hash(data) + one short outer hash
 * instead of re-absorbing both 64-byte pads per message.
 *
 * The streaming interface (begin()/finish()) lets callers MAC
 * scattered message pieces without concatenating them into one
 * buffer.
 */
class HmacKey
{
  public:
    HmacKey() : HmacKey(nullptr, 0) {}
    HmacKey(const uint8_t *key, size_t key_len);
    explicit HmacKey(const Key128 &key) : HmacKey(key.data(), key.size())
    {}

    /** One-shot MAC. */
    Sha256Digest mac(const uint8_t *data, size_t len) const;
    Sha256Digest
    mac(const Bytes &data) const
    {
        return mac(data.data(), data.size());
    }

    /** Start a streaming MAC: a hasher primed with key^ipad. */
    Sha256 begin() const;

    /** Finish a streaming MAC started with begin(). */
    Sha256Digest finish(Sha256 &inner) const;

    /**
     * Ablation switch: when disabled, every MAC re-absorbs both pads
     * (the pre-midstate behaviour). Output is bit-identical.
     */
    static void set_midstate_enabled(bool enabled);
    static bool midstate_enabled();

  private:
    Sha256Midstate inner_{};
    Sha256Midstate outer_{};
    /** key ^ ipad and key ^ opad, kept for the midstate-off path. */
    uint8_t ipad_block_[64];
    uint8_t opad_block_[64];
};

/** Constant-time digest comparison. */
bool digest_equal(const Sha256Digest &a, const Sha256Digest &b);

/**
 * Labeled key expansion, HKDF-expand-shaped: HMAC(secret, label).
 * Distinct ASCII labels partition one secret into independent subkeys
 * (the attested channel derives its six directional session keys this
 * way); a label is a domain, never attacker-controlled data.
 */
Sha256Digest hkdf_expand_label(const Sha256Digest &secret,
                               const char *label);

} // namespace occlum::crypto

#endif // OCCLUM_CRYPTO_HMAC_H
