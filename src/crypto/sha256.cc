#include "crypto/sha256.h"

#include <cstring>

#include "base/log.h"

namespace occlum::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

inline uint32_t
big_sigma0(uint32_t x)
{
    return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
}

inline uint32_t
big_sigma1(uint32_t x)
{
    return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
}

inline uint32_t
small_sigma0(uint32_t x)
{
    return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}

inline uint32_t
small_sigma1(uint32_t x)
{
    return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}

} // namespace

void
Sha256::reset()
{
    state_[0] = 0x6a09e667;
    state_[1] = 0xbb67ae85;
    state_[2] = 0x3c6ef372;
    state_[3] = 0xa54ff53a;
    state_[4] = 0x510e527f;
    state_[5] = 0x9b05688c;
    state_[6] = 0x1f83d9ab;
    state_[7] = 0x5be0cd19;
    buffered_ = 0;
    total_len_ = 0;
}

Sha256Midstate
Sha256::midstate() const
{
    OCC_CHECK_MSG(buffered_ == 0,
                  "midstate only exists on a 64-byte block boundary");
    Sha256Midstate m;
    for (int i = 0; i < 8; ++i) {
        m.state[i] = state_[i];
    }
    m.total_len = total_len_;
    return m;
}

void
Sha256::resume(const Sha256Midstate &m)
{
    for (int i = 0; i < 8; ++i) {
        state_[i] = m.state[i];
    }
    buffered_ = 0;
    total_len_ = m.total_len;
}

const Sha256Midstate &
Sha256::initial_midstate()
{
    static const Sha256Midstate m = [] {
        Sha256 h;
        return h.midstate();
    }();
    return m;
}

void
Sha256::compress(const uint8_t block[64])
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (uint32_t(block[4 * i]) << 24) |
               (uint32_t(block[4 * i + 1]) << 16) |
               (uint32_t(block[4 * i + 2]) << 8) |
               uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; i += 2) {
        w[i] = w[i - 16] + small_sigma0(w[i - 15]) + w[i - 7] +
               small_sigma1(w[i - 2]);
        w[i + 1] = w[i - 15] + small_sigma0(w[i - 14]) + w[i - 6] +
                   small_sigma1(w[i - 1]);
    }

    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

    // One round with the working variables permuted in place of the
    // h=g; g=f; ... rotation chain; eight of these bring the names
    // back into position, so the loop is unrolled 8 rounds per step.
#define OCC_SHA256_ROUND(a, b, c, d, e, f, g, h, i)                     \
    do {                                                                \
        uint32_t t1 = h + big_sigma1(e) + ((e & f) ^ (~e & g)) +        \
                      kK[i] + w[i];                                     \
        uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));    \
        d += t1;                                                        \
        h = t1 + t2;                                                    \
    } while (0)

    for (int i = 0; i < 64; i += 8) {
        OCC_SHA256_ROUND(a, b, c, d, e, f, g, h, i + 0);
        OCC_SHA256_ROUND(h, a, b, c, d, e, f, g, i + 1);
        OCC_SHA256_ROUND(g, h, a, b, c, d, e, f, i + 2);
        OCC_SHA256_ROUND(f, g, h, a, b, c, d, e, i + 3);
        OCC_SHA256_ROUND(e, f, g, h, a, b, c, d, i + 4);
        OCC_SHA256_ROUND(d, e, f, g, h, a, b, c, i + 5);
        OCC_SHA256_ROUND(c, d, e, f, g, h, a, b, i + 6);
        OCC_SHA256_ROUND(b, c, d, e, f, g, h, a, i + 7);
    }
#undef OCC_SHA256_ROUND

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(const uint8_t *data, size_t len)
{
    total_len_ += len;
    // Top up a partially filled buffer first.
    if (buffered_ != 0) {
        size_t take = std::min(len, sizeof(buffer_) - buffered_);
        std::memcpy(buffer_ + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == sizeof(buffer_)) {
            compress(buffer_);
            buffered_ = 0;
        }
    }
    // Full blocks straight from the input, no staging copy.
    while (len >= sizeof(buffer_)) {
        compress(data);
        data += sizeof(buffer_);
        len -= sizeof(buffer_);
    }
    if (len > 0) {
        std::memcpy(buffer_, data, len);
        buffered_ = len;
    }
}

Sha256Digest
Sha256::finish()
{
    uint64_t bit_len = total_len_ * 8;
    // Pad in place: 0x80, zeros to 56 mod 64, then the bit length.
    // Spills into a second compression when fewer than 9 bytes of the
    // current block remain.
    buffer_[buffered_++] = 0x80;
    if (buffered_ > 56) {
        std::memset(buffer_ + buffered_, 0, sizeof(buffer_) - buffered_);
        compress(buffer_);
        buffered_ = 0;
    }
    std::memset(buffer_ + buffered_, 0, 56 - buffered_);
    for (int i = 0; i < 8; ++i) {
        buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    }
    compress(buffer_);
    buffered_ = 0;

    Sha256Digest out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
        out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
        out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
        out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
    }
    return out;
}

} // namespace occlum::crypto
