#include "crypto/aes.h"

#include <cstdlib>
#include <cstring>

namespace occlum::crypto {

namespace {

/** GF(2^8) multiply by x (i.e. {02}) modulo x^8+x^4+x^3+x+1. */
inline uint8_t
xtime(uint8_t a)
{
    return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

/** Full GF(2^8) multiplication. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    while (b) {
        if (b & 1) {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

inline uint32_t
rotr32(uint32_t w, int n)
{
    return (w >> n) | (w << (32 - n));
}

/**
 * The AES S-box and encryption T-tables, computed once from first
 * principles. te0[x] packs the MixColumns column {02,01,01,03}·S[x]
 * big-endian; te1..te3 are byte rotations of te0, so one 32-bit
 * lookup per state byte performs SubBytes+ShiftRows+MixColumns.
 */
struct SboxTables {
    uint8_t sbox[256];
    uint32_t te0[256];
    uint32_t te1[256];
    uint32_t te2[256];
    uint32_t te3[256];

    SboxTables()
    {
        // Multiplicative inverses via exhaustive search (256^2 ops,
        // done once at startup).
        uint8_t inv[256] = {0};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(uint8_t(a), uint8_t(b)) == 1) {
                    inv[a] = uint8_t(b);
                    break;
                }
            }
        }
        for (int i = 0; i < 256; ++i) {
            uint8_t x = inv[i];
            // Affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^
            // rot4(b) ^ 0x63, with rotN = left-rotate by N bits.
            auto rotl8 = [](uint8_t v, int n) {
                return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
            };
            sbox[i] = static_cast<uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                           rotl8(x, 3) ^ rotl8(x, 4) ^
                                           0x63);
        }
        for (int i = 0; i < 256; ++i) {
            uint8_t s = sbox[i];
            uint8_t s2 = xtime(s);
            uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
            te0[i] = (uint32_t(s2) << 24) | (uint32_t(s) << 16) |
                     (uint32_t(s) << 8) | uint32_t(s3);
            te1[i] = rotr32(te0[i], 8);
            te2[i] = rotr32(te0[i], 16);
            te3[i] = rotr32(te0[i], 24);
        }
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

inline uint32_t
sub_word(uint32_t w)
{
    const uint8_t *s = tables().sbox;
    return (uint32_t(s[(w >> 24) & 0xff]) << 24) |
           (uint32_t(s[(w >> 16) & 0xff]) << 16) |
           (uint32_t(s[(w >> 8) & 0xff]) << 8) |
           uint32_t(s[w & 0xff]);
}

inline uint32_t
rot_word(uint32_t w)
{
    return (w << 8) | (w >> 24);
}

inline uint32_t
load_be32(const uint8_t *p)
{
    return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
           (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

inline void
store_be32(uint8_t *p, uint32_t w)
{
    p[0] = uint8_t(w >> 24);
    p[1] = uint8_t(w >> 16);
    p[2] = uint8_t(w >> 8);
    p[3] = uint8_t(w);
}

bool
initial_reference_mode()
{
    const char *env = std::getenv("OCCLUM_CRYPTO_REFERENCE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool g_reference_mode = initial_reference_mode();

} // namespace

void
Aes128::set_reference_mode(bool reference)
{
    g_reference_mode = reference;
}

bool
Aes128::reference_mode()
{
    return g_reference_mode;
}

Aes128::Aes128(const Key128 &key)
{
    // Key expansion (FIPS 197 §5.2), Nk=4, Nr=10.
    for (int i = 0; i < 4; ++i) {
        round_keys_[i] = (uint32_t(key[4 * i]) << 24) |
                         (uint32_t(key[4 * i + 1]) << 16) |
                         (uint32_t(key[4 * i + 2]) << 8) |
                         uint32_t(key[4 * i + 3]);
    }
    uint32_t rcon = 0x01;
    for (int i = 4; i < 44; ++i) {
        uint32_t temp = round_keys_[i - 1];
        if (i % 4 == 0) {
            temp = sub_word(rot_word(temp)) ^ (rcon << 24);
            rcon = xtime(static_cast<uint8_t>(rcon));
        }
        round_keys_[i] = round_keys_[i - 4] ^ temp;
    }
}

void
Aes128::encrypt_block(const uint8_t in[16], uint8_t out[16]) const
{
    if (g_reference_mode) {
        encrypt_block_ref(in, out);
    } else {
        encrypt_block_tt(in, out);
    }
}

void
Aes128::encrypt_block_tt(const uint8_t in[16], uint8_t out[16]) const
{
    const SboxTables &t = tables();
    const uint32_t *rk = round_keys_.data();

    // State as four big-endian column words; each word's MSB is row 0,
    // matching the reference path's column-major byte layout.
    uint32_t s0 = load_be32(in) ^ rk[0];
    uint32_t s1 = load_be32(in + 4) ^ rk[1];
    uint32_t s2 = load_be32(in + 8) ^ rk[2];
    uint32_t s3 = load_be32(in + 12) ^ rk[3];

    uint32_t t0, t1, t2, t3;
    for (int round = 1; round < 10; ++round) {
        rk += 4;
        t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xff] ^
             t.te2[(s2 >> 8) & 0xff] ^ t.te3[s3 & 0xff] ^ rk[0];
        t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xff] ^
             t.te2[(s3 >> 8) & 0xff] ^ t.te3[s0 & 0xff] ^ rk[1];
        t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xff] ^
             t.te2[(s0 >> 8) & 0xff] ^ t.te3[s1 & 0xff] ^ rk[2];
        t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xff] ^
             t.te2[(s1 >> 8) & 0xff] ^ t.te3[s2 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    const uint8_t *s = t.sbox;
    rk += 4;
    t0 = (uint32_t(s[s0 >> 24]) << 24) |
         (uint32_t(s[(s1 >> 16) & 0xff]) << 16) |
         (uint32_t(s[(s2 >> 8) & 0xff]) << 8) |
         uint32_t(s[s3 & 0xff]);
    t1 = (uint32_t(s[s1 >> 24]) << 24) |
         (uint32_t(s[(s2 >> 16) & 0xff]) << 16) |
         (uint32_t(s[(s3 >> 8) & 0xff]) << 8) |
         uint32_t(s[s0 & 0xff]);
    t2 = (uint32_t(s[s2 >> 24]) << 24) |
         (uint32_t(s[(s3 >> 16) & 0xff]) << 16) |
         (uint32_t(s[(s0 >> 8) & 0xff]) << 8) |
         uint32_t(s[s1 & 0xff]);
    t3 = (uint32_t(s[s3 >> 24]) << 24) |
         (uint32_t(s[(s0 >> 16) & 0xff]) << 16) |
         (uint32_t(s[(s1 >> 8) & 0xff]) << 8) |
         uint32_t(s[s2 & 0xff]);
    store_be32(out, t0 ^ rk[0]);
    store_be32(out + 4, t1 ^ rk[1]);
    store_be32(out + 8, t2 ^ rk[2]);
    store_be32(out + 12, t3 ^ rk[3]);
}

void
Aes128::encrypt_block_ref(const uint8_t in[16], uint8_t out[16]) const
{
    const uint8_t *sbox = tables().sbox;
    uint8_t state[16];
    std::memcpy(state, in, 16);

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            uint32_t rk = round_keys_[4 * round + c];
            state[4 * c] ^= uint8_t(rk >> 24);
            state[4 * c + 1] ^= uint8_t(rk >> 16);
            state[4 * c + 2] ^= uint8_t(rk >> 8);
            state[4 * c + 3] ^= uint8_t(rk);
        }
    };
    auto sub_bytes = [&]() {
        for (int i = 0; i < 16; ++i) {
            state[i] = sbox[state[i]];
        }
    };
    auto shift_rows = [&]() {
        // State is column-major: state[4*c + r].
        uint8_t tmp[16];
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r) {
                tmp[4 * c + r] = state[4 * ((c + r) % 4) + r];
            }
        }
        std::memcpy(state, tmp, 16);
    };
    auto mix_columns = [&]() {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = &state[4 * c];
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = uint8_t(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
            col[1] = uint8_t(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
            col[2] = uint8_t(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
            col[3] = uint8_t((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
        }
    };

    add_round_key(0);
    for (int round = 1; round < 10; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);

    std::memcpy(out, state, 16);
}

void
Aes128::ctr_crypt(const std::array<uint8_t, 12> &iv, uint32_t counter0,
                  const uint8_t *in, uint8_t *out, size_t len) const
{
    uint8_t counter_block[16];
    std::memcpy(counter_block, iv.data(), 12);
    uint32_t counter = counter0;
    size_t off = 0;

    if (!g_reference_mode) {
        // Fast path: 4 counter blocks of keystream per iteration,
        // XORed 64 bits at a time (memcpy keeps it alignment-safe;
        // compilers lower it to plain loads/stores).
        uint8_t keystream[64];
        while (len - off >= sizeof(keystream)) {
            for (int b = 0; b < 4; ++b) {
                store_be32(counter_block + 12, counter++);
                encrypt_block_tt(counter_block, keystream + 16 * b);
            }
            for (size_t i = 0; i < sizeof(keystream); i += 8) {
                uint64_t data, ks;
                std::memcpy(&data, in + off + i, 8);
                std::memcpy(&ks, keystream + i, 8);
                data ^= ks;
                std::memcpy(out + off + i, &data, 8);
            }
            off += sizeof(keystream);
        }
    }

    while (off < len) {
        store_be32(counter_block + 12, counter++);
        uint8_t keystream[16];
        encrypt_block(counter_block, keystream);
        size_t n = std::min<size_t>(16, len - off);
        for (size_t i = 0; i < n; ++i) {
            out[off + i] = in[off + i] ^ keystream[i];
        }
        off += n;
    }
}

} // namespace occlum::crypto
