#include "crypto/aes.h"

#include <cstring>

namespace occlum::crypto {

namespace {

/** GF(2^8) multiply by x (i.e. {02}) modulo x^8+x^4+x^3+x+1. */
inline uint8_t
xtime(uint8_t a)
{
    return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

/** Full GF(2^8) multiplication. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    while (b) {
        if (b & 1) {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

/** The AES S-box, computed once from first principles. */
struct SboxTables {
    uint8_t sbox[256];

    SboxTables()
    {
        // Multiplicative inverses via exhaustive search (256^2 ops,
        // done once at startup).
        uint8_t inv[256] = {0};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(uint8_t(a), uint8_t(b)) == 1) {
                    inv[a] = uint8_t(b);
                    break;
                }
            }
        }
        for (int i = 0; i < 256; ++i) {
            uint8_t x = inv[i];
            // Affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^
            // rot4(b) ^ 0x63, with rotN = left-rotate by N bits.
            auto rotl8 = [](uint8_t v, int n) {
                return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
            };
            sbox[i] = static_cast<uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                           rotl8(x, 3) ^ rotl8(x, 4) ^
                                           0x63);
        }
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

inline uint32_t
sub_word(uint32_t w)
{
    const uint8_t *s = tables().sbox;
    return (uint32_t(s[(w >> 24) & 0xff]) << 24) |
           (uint32_t(s[(w >> 16) & 0xff]) << 16) |
           (uint32_t(s[(w >> 8) & 0xff]) << 8) |
           uint32_t(s[w & 0xff]);
}

inline uint32_t
rot_word(uint32_t w)
{
    return (w << 8) | (w >> 24);
}

} // namespace

Aes128::Aes128(const Key128 &key)
{
    // Key expansion (FIPS 197 §5.2), Nk=4, Nr=10.
    for (int i = 0; i < 4; ++i) {
        round_keys_[i] = (uint32_t(key[4 * i]) << 24) |
                         (uint32_t(key[4 * i + 1]) << 16) |
                         (uint32_t(key[4 * i + 2]) << 8) |
                         uint32_t(key[4 * i + 3]);
    }
    uint32_t rcon = 0x01;
    for (int i = 4; i < 44; ++i) {
        uint32_t temp = round_keys_[i - 1];
        if (i % 4 == 0) {
            temp = sub_word(rot_word(temp)) ^ (rcon << 24);
            rcon = xtime(static_cast<uint8_t>(rcon));
        }
        round_keys_[i] = round_keys_[i - 4] ^ temp;
    }
}

void
Aes128::encrypt_block(const uint8_t in[16], uint8_t out[16]) const
{
    const uint8_t *sbox = tables().sbox;
    uint8_t state[16];
    std::memcpy(state, in, 16);

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            uint32_t rk = round_keys_[4 * round + c];
            state[4 * c] ^= uint8_t(rk >> 24);
            state[4 * c + 1] ^= uint8_t(rk >> 16);
            state[4 * c + 2] ^= uint8_t(rk >> 8);
            state[4 * c + 3] ^= uint8_t(rk);
        }
    };
    auto sub_bytes = [&]() {
        for (int i = 0; i < 16; ++i) {
            state[i] = sbox[state[i]];
        }
    };
    auto shift_rows = [&]() {
        // State is column-major: state[4*c + r].
        uint8_t tmp[16];
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r) {
                tmp[4 * c + r] = state[4 * ((c + r) % 4) + r];
            }
        }
        std::memcpy(state, tmp, 16);
    };
    auto mix_columns = [&]() {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = &state[4 * c];
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = uint8_t(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
            col[1] = uint8_t(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
            col[2] = uint8_t(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
            col[3] = uint8_t((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
        }
    };

    add_round_key(0);
    for (int round = 1; round < 10; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);

    std::memcpy(out, state, 16);
}

void
Aes128::ctr_crypt(const std::array<uint8_t, 12> &iv, uint32_t counter0,
                  const uint8_t *in, uint8_t *out, size_t len) const
{
    uint8_t counter_block[16];
    std::memcpy(counter_block, iv.data(), 12);
    uint32_t counter = counter0;

    size_t off = 0;
    while (off < len) {
        counter_block[12] = uint8_t(counter >> 24);
        counter_block[13] = uint8_t(counter >> 16);
        counter_block[14] = uint8_t(counter >> 8);
        counter_block[15] = uint8_t(counter);
        uint8_t keystream[16];
        encrypt_block(counter_block, keystream);

        size_t n = std::min<size_t>(16, len - off);
        for (size_t i = 0; i < n; ++i) {
            out[off + i] = in[off + i] ^ keystream[i];
        }
        off += n;
        ++counter;
    }
}

} // namespace occlum::crypto
