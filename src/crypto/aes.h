/**
 * @file
 * AES-128 block cipher and CTR-mode stream encryption (FIPS 197 /
 * SP 800-38A), implemented from scratch.
 *
 * The S-box is derived at static-initialization time from the GF(2^8)
 * multiplicative inverse and the affine transform, which removes the
 * risk of a typo in a 256-entry literal table. The four encryption
 * T-tables (SubBytes+ShiftRows+MixColumns folded into 32-bit lookups,
 * the standard software-AES formulation) are derived from that same
 * S-box, so the fast path shares the reference path's provenance.
 * CTR mode processes four counter blocks per iteration and XORs the
 * keystream word-wise. The byte-wise scalar implementation is kept as
 * a reference path, selectable with the OCCLUM_CRYPTO_REFERENCE
 * environment variable (or set_reference_mode()); both paths are
 * asserted bit-identical in tests.
 *
 * CTR mode is used by the encrypted file system and by the EIP
 * baseline's encrypted IPC streams. Tested against FIPS 197 and
 * SP 800-38A vectors.
 */
#ifndef OCCLUM_CRYPTO_AES_H
#define OCCLUM_CRYPTO_AES_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "base/bytes.h"
#include "crypto/hmac.h"

namespace occlum::crypto {

/** AES-128 with a fixed expanded key schedule. */
class Aes128
{
  public:
    explicit Aes128(const Key128 &key);

    /** Encrypt one 16-byte block in place (out may alias in). */
    void encrypt_block(const uint8_t in[16], uint8_t out[16]) const;

    /**
     * CTR-mode keystream XOR: encrypts or decrypts (the operation is
     * symmetric). The counter block is iv (96-bit nonce) || 32-bit
     * big-endian block counter starting at `counter0` (wrapping mod
     * 2^32, per SP 800-38A's incrementing function on 32 bits).
     */
    void ctr_crypt(const std::array<uint8_t, 12> &iv, uint32_t counter0,
                   const uint8_t *in, uint8_t *out, size_t len) const;

    Bytes
    ctr_crypt(const std::array<uint8_t, 12> &iv, uint32_t counter0,
              const Bytes &in) const
    {
        Bytes out(in.size());
        ctr_crypt(iv, counter0, in.data(), out.data(), in.size());
        return out;
    }

    /**
     * Select the byte-wise reference implementation (true) or the
     * T-table fast path (false, default). The initial value honours
     * the OCCLUM_CRYPTO_REFERENCE environment variable. Outputs are
     * bit-identical; only wall-clock differs.
     */
    static void set_reference_mode(bool reference);
    static bool reference_mode();

  private:
    void encrypt_block_tt(const uint8_t in[16], uint8_t out[16]) const;
    void encrypt_block_ref(const uint8_t in[16], uint8_t out[16]) const;

    std::array<uint32_t, 44> round_keys_;
};

} // namespace occlum::crypto

#endif // OCCLUM_CRYPTO_AES_H
