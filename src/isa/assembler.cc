#include "isa/assembler.h"

#include "base/log.h"

namespace occlum::isa {

MemOperand
mem_bd(uint8_t base, int32_t disp)
{
    MemOperand m;
    m.mode = AddrMode::kBaseDisp;
    m.base = base;
    m.disp = disp;
    return m;
}

MemOperand
mem_sib(uint8_t base, uint8_t index, uint8_t scale_log2, int32_t disp)
{
    MemOperand m;
    m.mode = AddrMode::kSib;
    m.base = base;
    m.index = index;
    m.scale_log2 = scale_log2;
    m.disp = disp;
    return m;
}

MemOperand
mem_rip(int32_t disp)
{
    MemOperand m;
    m.mode = AddrMode::kRipRel;
    m.disp = disp;
    return m;
}

MemOperand
mem_abs(uint64_t addr)
{
    MemOperand m;
    m.mode = AddrMode::kAbs;
    m.abs_addr = addr;
    return m;
}

void
Assembler::bind(const std::string &name)
{
    OCC_CHECK_MSG(labels_.find(name) == labels_.end(),
                  "label bound twice: " << name);
    labels_[name] = cursor_;
}

void
Assembler::define_value(const std::string &name, uint64_t offset)
{
    OCC_CHECK_MSG(labels_.find(name) == labels_.end(),
                  "label bound twice: " << name);
    labels_[name] = offset;
}

bool
Assembler::is_bound(const std::string &name) const
{
    return labels_.find(name) != labels_.end();
}

void
Assembler::push_item(Item item)
{
    item.offset = cursor_;
    cursor_ += item.length;
    items_.push_back(std::move(item));
}

void
Assembler::raw(const Bytes &bytes)
{
    Item item;
    item.is_raw = true;
    item.raw_bytes = bytes;
    item.length = bytes.size();
    push_item(std::move(item));
}

void
Assembler::emit(Instruction instr)
{
    Item item;
    item.instr = instr;
    item.length = encoded_length(instr);
    push_item(std::move(item));
}

void
Assembler::emit_mem_ref(Instruction instr, const std::string &mem_label)
{
    OCC_CHECK(instr.mem.mode == AddrMode::kRipRel);
    Item item;
    item.instr = instr;
    item.mem_ref = mem_label;
    item.length = encoded_length(instr);
    push_item(std::move(item));
}

void
Assembler::emit_branch(Instruction instr, const std::string &target)
{
    Item item;
    item.instr = instr;
    item.label_ref = target;
    item.length = encoded_length(instr);
    push_item(std::move(item));
}

void
Assembler::emit_addr_of(Instruction instr, const std::string &label)
{
    OCC_CHECK(instr.op == Opcode::kMovRI);
    Item item;
    item.instr = instr;
    item.label_ref = label;
    item.ref_is_addr = true;
    item.length = encoded_length(instr);
    push_item(std::move(item));
}

void
Assembler::emit_simple(Opcode op)
{
    Instruction i;
    i.op = op;
    emit(i);
}

void
Assembler::emit_reg(Opcode op, uint8_t r)
{
    Instruction i;
    i.op = op;
    i.reg1 = r;
    emit(i);
}

void
Assembler::emit_rr(Opcode op, uint8_t rd, uint8_t rs)
{
    Instruction i;
    i.op = op;
    i.reg1 = rd;
    i.reg2 = rs;
    emit(i);
}

void
Assembler::emit_ri(Opcode op, uint8_t rd, int64_t imm)
{
    Instruction i;
    i.op = op;
    i.reg1 = rd;
    i.imm = imm;
    emit(i);
}

void
Assembler::emit_rm(Opcode op, uint8_t r, MemOperand m)
{
    Instruction i;
    i.op = op;
    i.reg1 = r;
    i.mem = m;
    emit(i);
}

void
Assembler::cfi_label(uint32_t id)
{
    Instruction i;
    i.op = Opcode::kCfiLabel;
    i.label_id = id;
    emit(i);
}

void
Assembler::mov_ri(uint8_t r, int64_t imm)
{
    Instruction i;
    i.op = Opcode::kMovRI;
    i.reg1 = r;
    i.imm = imm;
    emit(i);
}

void
Assembler::mov_rl(uint8_t r, const std::string &label)
{
    Item item;
    item.instr.op = Opcode::kMovRI;
    item.instr.reg1 = r;
    item.label_ref = label;
    item.ref_is_addr = true;
    item.length = encoded_length(item.instr);
    push_item(std::move(item));
}

void
Assembler::jmp(const std::string &label)
{
    Item item;
    item.instr.op = Opcode::kJmp;
    item.label_ref = label;
    item.length = encoded_length(item.instr);
    push_item(std::move(item));
}

void
Assembler::jcc(Cond cond, const std::string &label)
{
    Item item;
    item.instr.op = Opcode::kJcc;
    item.instr.cond = cond;
    item.label_ref = label;
    item.length = encoded_length(item.instr);
    push_item(std::move(item));
}

void
Assembler::call(const std::string &label)
{
    Item item;
    item.instr.op = Opcode::kCall;
    item.label_ref = label;
    item.length = encoded_length(item.instr);
    push_item(std::move(item));
}

void
Assembler::jmp_mem(MemOperand m)
{
    Instruction i;
    i.op = Opcode::kJmpMem;
    i.mem = m;
    emit(i);
}

void
Assembler::call_mem(MemOperand m)
{
    Instruction i;
    i.op = Opcode::kCallMem;
    i.mem = m;
    emit(i);
}

void
Assembler::push_imm(int32_t imm)
{
    Instruction i;
    i.op = Opcode::kPushImm;
    i.imm = imm;
    emit(i);
}

void
Assembler::bndcl_mem(uint8_t bnd, MemOperand m)
{
    Instruction i;
    i.op = Opcode::kBndclMem;
    i.bnd = bnd;
    i.mem = m;
    emit(i);
}

void
Assembler::bndcu_mem(uint8_t bnd, MemOperand m)
{
    Instruction i;
    i.op = Opcode::kBndcuMem;
    i.bnd = bnd;
    i.mem = m;
    emit(i);
}

void
Assembler::bndcl_reg(uint8_t bnd, uint8_t r)
{
    Instruction i;
    i.op = Opcode::kBndclReg;
    i.bnd = bnd;
    i.reg1 = r;
    emit(i);
}

void
Assembler::bndcu_reg(uint8_t bnd, uint8_t r)
{
    Instruction i;
    i.op = Opcode::kBndcuReg;
    i.bnd = bnd;
    i.reg1 = r;
    emit(i);
}

void
Assembler::bndmk(uint8_t bnd, MemOperand m)
{
    Instruction i;
    i.op = Opcode::kBndmk;
    i.bnd = bnd;
    i.mem = m;
    emit(i);
}

uint64_t
Assembler::label_offset(const std::string &name) const
{
    auto it = labels_.find(name);
    OCC_CHECK_MSG(it != labels_.end(), "unbound label: " << name);
    return it->second;
}

Bytes
Assembler::finish()
{
    Bytes out;
    out.reserve(cursor_);
    for (auto &item : items_) {
        if (item.is_raw) {
            out.insert(out.end(), item.raw_bytes.begin(),
                       item.raw_bytes.end());
            continue;
        }
        Instruction instr = item.instr;
        if (!item.mem_ref.empty()) {
            uint64_t target = base_ + label_offset(item.mem_ref);
            uint64_t end = base_ + item.offset + item.length;
            int64_t disp = static_cast<int64_t>(target - end);
            OCC_CHECK_MSG(disp >= INT32_MIN && disp <= INT32_MAX,
                          "rip-rel overflow to " << item.mem_ref);
            instr.mem.disp = static_cast<int32_t>(disp);
        }
        if (!item.label_ref.empty()) {
            uint64_t target = base_ + label_offset(item.label_ref);
            if (item.ref_is_addr) {
                instr.imm = static_cast<int64_t>(target);
            } else {
                uint64_t end = base_ + item.offset + item.length;
                instr.imm = static_cast<int64_t>(target - end);
                OCC_CHECK_MSG(instr.imm >= INT32_MIN &&
                              instr.imm <= INT32_MAX,
                              "rel32 overflow to " << item.label_ref);
            }
        }
        size_t len = encode(instr, out);
        OCC_CHECK(len == item.length);
        OCC_CHECK(out.size() == item.offset + item.length);
    }
    return out;
}

} // namespace occlum::isa
