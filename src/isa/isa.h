/**
 * @file
 * The OVM instruction set: a 64-bit, little-endian, variable-length
 * ISA modeled on the x86-64 subset that matters to MMDSFI.
 *
 * Design requirements inherited from the paper:
 *  - Variable-length encoding, so that jumping into the middle of an
 *    instruction decodes to a *different* instruction stream. This is
 *    what makes complete disassembly (verifier Stage 1) and the
 *    cfi_label discipline meaningful.
 *  - MPX-style bound registers bnd0..bnd3 with lower/upper check
 *    instructions that raise #BR on violation (paper §2.3).
 *  - The four control-transfer categories of paper Fig. 3 (direct,
 *    register-indirect, memory-indirect, return) and the five memory
 *    addressing categories of paper Fig. 4 (SIB, implicit
 *    register-based via push/pop, RIP-relative, direct 64-bit offset,
 *    vector SIB).
 *  - "Dangerous" privileged instructions that verifier Stage 2 must
 *    reject: SGX analogs (eexit/eaccept), MPX mutation (bndmk/bndmov),
 *    and miscellaneous state-smashing ops (xrstor/wrfsbase), plus
 *    ltrap, the LibOS trap reserved for the loader's trampoline.
 *  - An 8-byte cfi_label encoding whose first four bytes are a magic
 *    that the toolchain never emits in any other position and whose
 *    last four bytes hold the domain ID (paper §4.2).
 */
#ifndef OCCLUM_ISA_ISA_H
#define OCCLUM_ISA_ISA_H

#include <cstdint>
#include <optional>
#include <string>

#include "base/bytes.h"
#include "base/result.h"

namespace occlum::isa {

/** Number of general-purpose registers. */
constexpr int kNumRegs = 16;
/** Register 15 is the stack pointer (implicit in push/pop/call). */
constexpr uint8_t kSp = 15;
/** Register 13 is reserved by the toolchain as instrumentation scratch. */
constexpr uint8_t kScratch = 13;
/** Number of MPX-style bound registers. */
constexpr int kNumBndRegs = 4;
/** bnd0 holds [D.begin, D.end-1]; bnd1 holds the cfi_label value. */
constexpr uint8_t kBndData = 0;
constexpr uint8_t kBndCfi = 1;

/**
 * cfi_label magic: the first four encoded bytes. Byte 0 (0xCF) is an
 * opcode reserved exclusively for cfi_label; bytes 1..3 further
 * disambiguate against data embedded in immediates.
 */
constexpr uint8_t kCfiMagic[4] = {0xCF, 0x1A, 0xBE, 0x1D};
/** Total encoded size of a cfi_label. */
constexpr size_t kCfiLabelSize = 8;

/** The 64-bit value read from memory at a cfi_label for `domain_id`. */
constexpr uint64_t
cfi_label_value(uint32_t domain_id)
{
    return 0x1DBE1ACFull | (static_cast<uint64_t>(domain_id) << 32);
}

/** Operation codes. Gaps are reserved. */
enum class Opcode : uint8_t {
    kNop = 0x00,
    kHlt = 0x01,      // privileged: stops the CPU (dangerous)
    kLtrap = 0x02,    // privileged: trap into the LibOS (trampoline only)
    kEexit = 0x03,    // SGX analog: exit the enclave (dangerous)
    kEaccept = 0x04,  // SGX analog: change page perms (dangerous)
    kXrstor = 0x05,   // restores extended state incl. MPX (dangerous)
    kWrfsbase = 0x06, // writes FS segment base (dangerous)
    kRdcycle = 0x07,  // read simulated cycle counter (benign)

    kMovRI = 0x10,  // reg <- imm64
    kMovRR = 0x11,  // reg <- reg
    kLoad = 0x12,   // reg <- [mem], 64-bit
    kStore = 0x13,  // [mem] <- reg, 64-bit
    kLea = 0x14,    // reg <- effective address of mem
    kLoad8 = 0x15,  // reg <- zero-extended byte
    kStore8 = 0x16, // [mem] <- low byte of reg
    kLoad32 = 0x17, // reg <- zero-extended dword
    kStore32 = 0x18,// [mem] <- low dword of reg
    kVGather = 0x19,// vector-SIB analog: multi-address load (rejected)

    kAddRR = 0x20, kAddRI = 0x21,
    kSubRR = 0x22, kSubRI = 0x23,
    kMulRR = 0x24, kMulRI = 0x25,
    kDivRR = 0x26, kModRR = 0x27,
    kAndRR = 0x28, kAndRI = 0x29,
    kOrRR = 0x2a, kOrRI = 0x2b,
    kXorRR = 0x2c, kXorRI = 0x2d,
    kShlRI = 0x2e, kShrRI = 0x2f, kSarRI = 0x30,
    kShlRR = 0x31, kShrRR = 0x32, kSarRR = 0x33,
    kNeg = 0x34, kNot = 0x35,
    kCmpRR = 0x36, kCmpRI = 0x37, kTestRR = 0x38,

    kJmp = 0x40,     // direct: rel32 from end of instruction
    kJcc = 0x41,     // conditional direct: cond byte + rel32
    kCall = 0x42,    // direct call: pushes return address
    kJmpReg = 0x43,  // register-based indirect jump
    kCallReg = 0x44, // register-based indirect call
    kJmpMem = 0x45,  // memory-based indirect jump (rejected)
    kCallMem = 0x46, // memory-based indirect call (rejected)
    kRet = 0x47,     // return (rejected; rewritten by the toolchain)
    kRetImm = 0x48,  // return + pop imm16 (rejected)

    kPush = 0x50,    // [sp-8] <- reg; sp -= 8
    kPop = 0x51,     // reg <- [sp]; sp += 8
    kPushImm = 0x52, // push sign-extended imm32

    kBndclMem = 0x60, // #BR if EA(mem) < bnd.lo
    kBndcuMem = 0x61, // #BR if EA(mem) > bnd.hi
    kBndclReg = 0x62, // #BR if reg < bnd.lo
    kBndcuReg = 0x63, // #BR if reg > bnd.hi
    kBndmk = 0x64,    // make bounds (dangerous)
    kBndmov = 0x65,   // move bounds (dangerous)

    kCfiLabel = 0xCF, // 8-byte no-op label; last 4 bytes = domain ID
};

/** Branch conditions for kJcc, evaluated against the flags register. */
enum class Cond : uint8_t {
    kEq = 0,  // ZF
    kNe = 1,  // !ZF
    kLt = 2,  // signed <
    kLe = 3,  // signed <=
    kGt = 4,  // signed >
    kGe = 5,  // signed >=
    kB = 6,   // unsigned <
    kBe = 7,  // unsigned <=
    kA = 8,   // unsigned >
    kAe = 9,  // unsigned >=
};
constexpr int kNumConds = 10;

/** Memory addressing modes (paper Fig. 4 categories). */
enum class AddrMode : uint8_t {
    kBaseDisp = 0, // [base + disp32]
    kSib = 1,      // [base + index * 2^scale + disp32]
    kRipRel = 2,   // [rip_end + disp32]
    kAbs = 3,      // [imm64]  (direct memory offset; always rejected)
};

/** A decoded memory operand. */
struct MemOperand {
    AddrMode mode = AddrMode::kBaseDisp;
    uint8_t base = 0;
    uint8_t index = 0;
    uint8_t scale_log2 = 0; // 0..3
    int32_t disp = 0;
    uint64_t abs_addr = 0;

    bool
    operator==(const MemOperand &o) const
    {
        if (mode != o.mode) return false;
        switch (mode) {
          case AddrMode::kBaseDisp:
            return base == o.base && disp == o.disp;
          case AddrMode::kSib:
            return base == o.base && index == o.index &&
                   scale_log2 == o.scale_log2 && disp == o.disp;
          case AddrMode::kRipRel:
            return disp == o.disp;
          case AddrMode::kAbs:
            return abs_addr == o.abs_addr;
        }
        return false;
    }
};

/** A decoded instruction. `address`/`length` identify it in the image. */
struct Instruction {
    Opcode op = Opcode::kNop;
    uint8_t reg1 = 0;     // destination / first register operand
    uint8_t reg2 = 0;     // source / second register operand
    uint8_t bnd = 0;      // bound register index for bnd* ops
    Cond cond = Cond::kEq;
    int64_t imm = 0;      // immediate / rel32 (sign-extended)
    MemOperand mem;
    uint32_t label_id = 0; // cfi_label domain ID field

    uint64_t address = 0; // virtual address of the first byte
    uint32_t length = 0;  // encoded length in bytes

    /**
     * cycle_cost(*this), stamped by decode() so the VM's dispatch
     * loop charges a precomputed field instead of re-classifying the
     * opcode on every execution. Identical value, cheaper to read.
     */
    uint32_t cost = 1;

    /** Address of the next sequential instruction. */
    uint64_t end() const { return address + length; }

    /** Target of a direct jmp/jcc/call (rel32 from end). */
    uint64_t
    direct_target() const
    {
        return end() + static_cast<uint64_t>(imm);
    }
};

// ---- Instruction classification used by the verifier -------------------

/** True for instructions verifier Stage 2 must reject (paper §5). */
bool is_dangerous(Opcode op);

/** Control-transfer categories of paper Fig. 3. */
enum class TransferKind {
    kNone,
    kDirect,         // jmp/jcc/call rel32
    kRegisterIndirect,
    kMemoryIndirect,
    kReturn,
};
TransferKind transfer_kind(Opcode op);

/** True if the instruction reads or writes memory through `mem`. */
bool explicit_mem_access(Opcode op);
/** True if the explicit access is a store (write). */
bool is_store(Opcode op);
/** True for push/pop/call-style implicit stack accesses. */
bool implicit_stack_access(Opcode op);

/** Cycle cost charged by the VM per executed instruction. */
uint32_t cycle_cost(const Instruction &instr);

/** Mnemonic, for the disassembler and error messages. */
const char *opcode_name(Opcode op);
const char *cond_name(Cond cond);

// ---- Encoding / decoding ------------------------------------------------

/** Append the encoding of `instr` to `out`; returns encoded length. */
size_t encode(const Instruction &instr, Bytes &out);

/** Encoded length without materializing bytes. */
size_t encoded_length(const Instruction &instr);

/**
 * Decode one instruction at `code + offset`, whose first byte lives at
 * virtual address `vaddr`. Fails on truncated or unknown encodings.
 */
Result<Instruction> decode(const uint8_t *code, size_t size, size_t offset,
                           uint64_t vaddr);

/** Render one instruction as assembly text. */
std::string to_string(const Instruction &instr);

} // namespace occlum::isa

#endif // OCCLUM_ISA_ISA_H
