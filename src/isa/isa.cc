#include "isa/isa.h"

#include <sstream>

#include "base/log.h"

namespace occlum::isa {

namespace {

/** Operand-layout signatures shared by encode/decode. */
enum class Sig {
    kNone,      // op
    kReg,       // op reg
    kRegImm64,  // op reg imm64
    kRegImm32,  // op reg imm32
    kRegImm8,   // op reg imm8
    kRegReg,    // op reg reg
    kRegMem,    // op reg mem   (also used for store: mem is destination)
    kMem,       // op mem
    kImm32,     // op imm32 (rel32 or pushed imm)
    kCondImm32, // op cond rel32
    kImm16,     // op imm16
    kBndMem,    // op bnd mem
    kBndReg,    // op bnd reg
    kBndBnd,    // op bnd bnd
    kCfi,       // 8-byte cfi_label
};

Sig
signature(Opcode op)
{
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHlt:
      case Opcode::kLtrap:
      case Opcode::kEexit:
      case Opcode::kEaccept:
      case Opcode::kXrstor:
      case Opcode::kRet:
        return Sig::kNone;
      case Opcode::kWrfsbase:
      case Opcode::kRdcycle:
      case Opcode::kNeg:
      case Opcode::kNot:
      case Opcode::kJmpReg:
      case Opcode::kCallReg:
      case Opcode::kPush:
      case Opcode::kPop:
        return Sig::kReg;
      case Opcode::kMovRI:
        return Sig::kRegImm64;
      case Opcode::kAddRI:
      case Opcode::kSubRI:
      case Opcode::kMulRI:
      case Opcode::kAndRI:
      case Opcode::kOrRI:
      case Opcode::kXorRI:
      case Opcode::kCmpRI:
        return Sig::kRegImm32;
      case Opcode::kShlRI:
      case Opcode::kShrRI:
      case Opcode::kSarRI:
        return Sig::kRegImm8;
      case Opcode::kMovRR:
      case Opcode::kAddRR:
      case Opcode::kSubRR:
      case Opcode::kMulRR:
      case Opcode::kDivRR:
      case Opcode::kModRR:
      case Opcode::kAndRR:
      case Opcode::kOrRR:
      case Opcode::kXorRR:
      case Opcode::kShlRR:
      case Opcode::kShrRR:
      case Opcode::kSarRR:
      case Opcode::kCmpRR:
      case Opcode::kTestRR:
        return Sig::kRegReg;
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kLea:
      case Opcode::kLoad8:
      case Opcode::kStore8:
      case Opcode::kLoad32:
      case Opcode::kStore32:
      case Opcode::kVGather:
        return Sig::kRegMem;
      case Opcode::kJmpMem:
      case Opcode::kCallMem:
        return Sig::kMem;
      case Opcode::kJmp:
      case Opcode::kCall:
      case Opcode::kPushImm:
        return Sig::kImm32;
      case Opcode::kJcc:
        return Sig::kCondImm32;
      case Opcode::kRetImm:
        return Sig::kImm16;
      case Opcode::kBndclMem:
      case Opcode::kBndcuMem:
      case Opcode::kBndmk:
        return Sig::kBndMem;
      case Opcode::kBndclReg:
      case Opcode::kBndcuReg:
        return Sig::kBndReg;
      case Opcode::kBndmov:
        return Sig::kBndBnd;
      case Opcode::kCfiLabel:
        return Sig::kCfi;
    }
    OCC_PANIC("unknown opcode " << static_cast<int>(op));
}

size_t
mem_encoded_length(const MemOperand &mem)
{
    switch (mem.mode) {
      case AddrMode::kBaseDisp: return 6;
      case AddrMode::kSib: return 8;
      case AddrMode::kRipRel: return 5;
      case AddrMode::kAbs: return 9;
    }
    OCC_PANIC("bad addr mode");
}

void
encode_mem(const MemOperand &mem, Bytes &out)
{
    out.push_back(static_cast<uint8_t>(mem.mode));
    switch (mem.mode) {
      case AddrMode::kBaseDisp:
        out.push_back(mem.base);
        put_le<uint32_t>(out, static_cast<uint32_t>(mem.disp));
        break;
      case AddrMode::kSib:
        out.push_back(mem.base);
        out.push_back(mem.index);
        out.push_back(mem.scale_log2);
        put_le<uint32_t>(out, static_cast<uint32_t>(mem.disp));
        break;
      case AddrMode::kRipRel:
        put_le<uint32_t>(out, static_cast<uint32_t>(mem.disp));
        break;
      case AddrMode::kAbs:
        put_le<uint64_t>(out, mem.abs_addr);
        break;
    }
}

/** Returns false on truncation / malformed fields. */
bool
decode_mem(const uint8_t *p, size_t avail, MemOperand &mem, size_t &used)
{
    if (avail < 1) return false;
    uint8_t mode = p[0];
    if (mode > static_cast<uint8_t>(AddrMode::kAbs)) return false;
    mem.mode = static_cast<AddrMode>(mode);
    used = mem_encoded_length(mem);
    if (avail < used) return false;
    switch (mem.mode) {
      case AddrMode::kBaseDisp:
        if (p[1] >= kNumRegs) return false;
        mem.base = p[1];
        mem.disp = static_cast<int32_t>(get_le<uint32_t>(p + 2));
        break;
      case AddrMode::kSib:
        if (p[1] >= kNumRegs || p[2] >= kNumRegs || p[3] > 3) return false;
        mem.base = p[1];
        mem.index = p[2];
        mem.scale_log2 = p[3];
        mem.disp = static_cast<int32_t>(get_le<uint32_t>(p + 4));
        break;
      case AddrMode::kRipRel:
        mem.disp = static_cast<int32_t>(get_le<uint32_t>(p + 1));
        break;
      case AddrMode::kAbs:
        mem.abs_addr = get_le<uint64_t>(p + 1);
        break;
    }
    return true;
}

bool
valid_opcode(uint8_t byte)
{
    switch (static_cast<Opcode>(byte)) {
      case Opcode::kNop: case Opcode::kHlt: case Opcode::kLtrap:
      case Opcode::kEexit: case Opcode::kEaccept: case Opcode::kXrstor:
      case Opcode::kWrfsbase: case Opcode::kRdcycle:
      case Opcode::kMovRI: case Opcode::kMovRR:
      case Opcode::kLoad: case Opcode::kStore: case Opcode::kLea:
      case Opcode::kLoad8: case Opcode::kStore8:
      case Opcode::kLoad32: case Opcode::kStore32: case Opcode::kVGather:
      case Opcode::kAddRR: case Opcode::kAddRI:
      case Opcode::kSubRR: case Opcode::kSubRI:
      case Opcode::kMulRR: case Opcode::kMulRI:
      case Opcode::kDivRR: case Opcode::kModRR:
      case Opcode::kAndRR: case Opcode::kAndRI:
      case Opcode::kOrRR: case Opcode::kOrRI:
      case Opcode::kXorRR: case Opcode::kXorRI:
      case Opcode::kShlRI: case Opcode::kShrRI: case Opcode::kSarRI:
      case Opcode::kShlRR: case Opcode::kShrRR: case Opcode::kSarRR:
      case Opcode::kNeg: case Opcode::kNot:
      case Opcode::kCmpRR: case Opcode::kCmpRI: case Opcode::kTestRR:
      case Opcode::kJmp: case Opcode::kJcc: case Opcode::kCall:
      case Opcode::kJmpReg: case Opcode::kCallReg:
      case Opcode::kJmpMem: case Opcode::kCallMem:
      case Opcode::kRet: case Opcode::kRetImm:
      case Opcode::kPush: case Opcode::kPop: case Opcode::kPushImm:
      case Opcode::kBndclMem: case Opcode::kBndcuMem:
      case Opcode::kBndclReg: case Opcode::kBndcuReg:
      case Opcode::kBndmk: case Opcode::kBndmov:
      case Opcode::kCfiLabel:
        return true;
    }
    return false;
}

std::string
mem_to_string(const MemOperand &mem)
{
    std::ostringstream ss;
    switch (mem.mode) {
      case AddrMode::kBaseDisp:
        ss << "[r" << int(mem.base) << std::showpos << mem.disp
           << std::noshowpos << "]";
        break;
      case AddrMode::kSib:
        ss << "[r" << int(mem.base) << "+r" << int(mem.index) << "*"
           << (1 << mem.scale_log2) << std::showpos << mem.disp
           << std::noshowpos << "]";
        break;
      case AddrMode::kRipRel:
        ss << "[rip" << std::showpos << mem.disp << std::noshowpos << "]";
        break;
      case AddrMode::kAbs:
        ss << "[0x" << std::hex << mem.abs_addr << std::dec << "]";
        break;
    }
    return ss.str();
}

} // namespace

bool
is_dangerous(Opcode op)
{
    switch (op) {
      case Opcode::kHlt:
      case Opcode::kLtrap:
      case Opcode::kEexit:
      case Opcode::kEaccept:
      case Opcode::kXrstor:
      case Opcode::kWrfsbase:
      case Opcode::kBndmk:
      case Opcode::kBndmov:
        return true;
      default:
        return false;
    }
}

TransferKind
transfer_kind(Opcode op)
{
    switch (op) {
      case Opcode::kJmp:
      case Opcode::kJcc:
      case Opcode::kCall:
        return TransferKind::kDirect;
      case Opcode::kJmpReg:
      case Opcode::kCallReg:
        return TransferKind::kRegisterIndirect;
      case Opcode::kJmpMem:
      case Opcode::kCallMem:
        return TransferKind::kMemoryIndirect;
      case Opcode::kRet:
      case Opcode::kRetImm:
        return TransferKind::kReturn;
      default:
        return TransferKind::kNone;
    }
}

bool
explicit_mem_access(Opcode op)
{
    switch (op) {
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kLoad8:
      case Opcode::kStore8:
      case Opcode::kLoad32:
      case Opcode::kStore32:
      case Opcode::kVGather:
        return true;
      default:
        return false;
    }
}

bool
is_store(Opcode op)
{
    return op == Opcode::kStore || op == Opcode::kStore8 ||
           op == Opcode::kStore32;
}

bool
implicit_stack_access(Opcode op)
{
    switch (op) {
      case Opcode::kPush:
      case Opcode::kPop:
      case Opcode::kPushImm:
      case Opcode::kCall:
      case Opcode::kCallReg:
      case Opcode::kCallMem:
      case Opcode::kRet:
      case Opcode::kRetImm:
        return true;
      default:
        return false;
    }
}

uint32_t
cycle_cost(const Instruction &instr)
{
    switch (instr.op) {
      case Opcode::kNop:
      case Opcode::kCfiLabel:
        return 1;
      case Opcode::kLoad:
      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kPop:
        return 4; // L1-hit latency
      case Opcode::kStore:
      case Opcode::kStore8:
      case Opcode::kStore32:
      case Opcode::kPush:
      case Opcode::kPushImm:
        return 3;
      case Opcode::kVGather:
        return 12;
      case Opcode::kMulRR:
      case Opcode::kMulRI:
        return 3;
      case Opcode::kDivRR:
      case Opcode::kModRR:
        return 22;
      case Opcode::kJmp:
      case Opcode::kJcc:
        return 2; // average with predictor
      case Opcode::kCall:
      case Opcode::kCallReg:
      case Opcode::kCallMem:
      case Opcode::kRet:
      case Opcode::kRetImm:
      case Opcode::kJmpReg:
      case Opcode::kJmpMem:
        return 4;
      case Opcode::kBndclMem:
      case Opcode::kBndcuMem:
      case Opcode::kBndclReg:
      case Opcode::kBndcuReg:
        // An MPX bound check retires in ~1-2 cycles, but against -O2
        // x86-64 code one source-level operation is ~3-4x fewer
        // machine instructions than our naive codegen emits, which
        // would dilute the instrumentation ratio Fig. 7 measures.
        // Charging 7 cycles per check keeps the check-to-work ratio
        // of real MPX-instrumented binaries (see EXPERIMENTS.md).
        return 7;
      default:
        return 1;
    }
}

const char *
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::kNop: return "nop";
      case Opcode::kHlt: return "hlt";
      case Opcode::kLtrap: return "ltrap";
      case Opcode::kEexit: return "eexit";
      case Opcode::kEaccept: return "eaccept";
      case Opcode::kXrstor: return "xrstor";
      case Opcode::kWrfsbase: return "wrfsbase";
      case Opcode::kRdcycle: return "rdcycle";
      case Opcode::kMovRI: return "mov";
      case Opcode::kMovRR: return "mov";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kLea: return "lea";
      case Opcode::kLoad8: return "load8";
      case Opcode::kStore8: return "store8";
      case Opcode::kLoad32: return "load32";
      case Opcode::kStore32: return "store32";
      case Opcode::kVGather: return "vgather";
      case Opcode::kAddRR: case Opcode::kAddRI: return "add";
      case Opcode::kSubRR: case Opcode::kSubRI: return "sub";
      case Opcode::kMulRR: case Opcode::kMulRI: return "mul";
      case Opcode::kDivRR: return "div";
      case Opcode::kModRR: return "mod";
      case Opcode::kAndRR: case Opcode::kAndRI: return "and";
      case Opcode::kOrRR: case Opcode::kOrRI: return "or";
      case Opcode::kXorRR: case Opcode::kXorRI: return "xor";
      case Opcode::kShlRI: case Opcode::kShlRR: return "shl";
      case Opcode::kShrRI: case Opcode::kShrRR: return "shr";
      case Opcode::kSarRI: case Opcode::kSarRR: return "sar";
      case Opcode::kNeg: return "neg";
      case Opcode::kNot: return "not";
      case Opcode::kCmpRR: case Opcode::kCmpRI: return "cmp";
      case Opcode::kTestRR: return "test";
      case Opcode::kJmp: return "jmp";
      case Opcode::kJcc: return "jcc";
      case Opcode::kCall: return "call";
      case Opcode::kJmpReg: return "jmp";
      case Opcode::kCallReg: return "call";
      case Opcode::kJmpMem: return "jmp";
      case Opcode::kCallMem: return "call";
      case Opcode::kRet: return "ret";
      case Opcode::kRetImm: return "ret";
      case Opcode::kPush: return "push";
      case Opcode::kPop: return "pop";
      case Opcode::kPushImm: return "push";
      case Opcode::kBndclMem: case Opcode::kBndclReg: return "bndcl";
      case Opcode::kBndcuMem: case Opcode::kBndcuReg: return "bndcu";
      case Opcode::kBndmk: return "bndmk";
      case Opcode::kBndmov: return "bndmov";
      case Opcode::kCfiLabel: return "cfi_label";
    }
    return "?";
}

const char *
cond_name(Cond cond)
{
    switch (cond) {
      case Cond::kEq: return "eq";
      case Cond::kNe: return "ne";
      case Cond::kLt: return "lt";
      case Cond::kLe: return "le";
      case Cond::kGt: return "gt";
      case Cond::kGe: return "ge";
      case Cond::kB: return "b";
      case Cond::kBe: return "be";
      case Cond::kA: return "a";
      case Cond::kAe: return "ae";
    }
    return "?";
}

size_t
encoded_length(const Instruction &instr)
{
    switch (signature(instr.op)) {
      case Sig::kNone: return 1;
      case Sig::kReg: return 2;
      case Sig::kRegImm64: return 10;
      case Sig::kRegImm32: return 6;
      case Sig::kRegImm8: return 3;
      case Sig::kRegReg: return 3;
      case Sig::kRegMem: return 2 + mem_encoded_length(instr.mem);
      case Sig::kMem: return 1 + mem_encoded_length(instr.mem);
      case Sig::kImm32: return 5;
      case Sig::kCondImm32: return 6;
      case Sig::kImm16: return 3;
      case Sig::kBndMem: return 2 + mem_encoded_length(instr.mem);
      case Sig::kBndReg: return 3;
      case Sig::kBndBnd: return 3;
      case Sig::kCfi: return kCfiLabelSize;
    }
    OCC_PANIC("bad signature");
}

size_t
encode(const Instruction &instr, Bytes &out)
{
    size_t start = out.size();
    if (instr.op == Opcode::kCfiLabel) {
        out.insert(out.end(), std::begin(kCfiMagic), std::end(kCfiMagic));
        put_le<uint32_t>(out, instr.label_id);
        return out.size() - start;
    }
    out.push_back(static_cast<uint8_t>(instr.op));
    switch (signature(instr.op)) {
      case Sig::kNone:
        break;
      case Sig::kReg:
        out.push_back(instr.reg1);
        break;
      case Sig::kRegImm64:
        out.push_back(instr.reg1);
        put_le<uint64_t>(out, static_cast<uint64_t>(instr.imm));
        break;
      case Sig::kRegImm32:
        out.push_back(instr.reg1);
        put_le<uint32_t>(out, static_cast<uint32_t>(instr.imm));
        break;
      case Sig::kRegImm8:
        out.push_back(instr.reg1);
        out.push_back(static_cast<uint8_t>(instr.imm));
        break;
      case Sig::kRegReg:
        out.push_back(instr.reg1);
        out.push_back(instr.reg2);
        break;
      case Sig::kRegMem:
        out.push_back(instr.reg1);
        encode_mem(instr.mem, out);
        break;
      case Sig::kMem:
        encode_mem(instr.mem, out);
        break;
      case Sig::kImm32:
        put_le<uint32_t>(out, static_cast<uint32_t>(instr.imm));
        break;
      case Sig::kCondImm32:
        out.push_back(static_cast<uint8_t>(instr.cond));
        put_le<uint32_t>(out, static_cast<uint32_t>(instr.imm));
        break;
      case Sig::kImm16:
        put_le<uint16_t>(out, static_cast<uint16_t>(instr.imm));
        break;
      case Sig::kBndMem:
        out.push_back(instr.bnd);
        encode_mem(instr.mem, out);
        break;
      case Sig::kBndReg:
        out.push_back(instr.bnd);
        out.push_back(instr.reg1);
        break;
      case Sig::kBndBnd:
        out.push_back(instr.bnd);
        out.push_back(instr.reg1); // second bound register index
        break;
      case Sig::kCfi:
        OCC_PANIC("unreachable");
    }
    return out.size() - start;
}

Result<Instruction>
decode(const uint8_t *code, size_t size, size_t offset, uint64_t vaddr)
{
    auto fail = [&](const std::string &why) -> Result<Instruction> {
        return Error(ErrorCode::kNoExec,
                     "decode @0x" + to_hex(
                         reinterpret_cast<const uint8_t *>(&vaddr), 8) +
                     ": " + why);
    };
    if (offset >= size) {
        return fail("out of range");
    }
    const uint8_t *p = code + offset;
    size_t avail = size - offset;

    Instruction instr;
    instr.address = vaddr;

    // cfi_label: full 4-byte magic required.
    if (p[0] == kCfiMagic[0]) {
        if (avail < kCfiLabelSize) return fail("truncated cfi_label");
        for (int i = 1; i < 4; ++i) {
            if (p[i] != kCfiMagic[i]) return fail("bad cfi_label magic");
        }
        instr.op = Opcode::kCfiLabel;
        instr.label_id = get_le<uint32_t>(p + 4);
        instr.length = kCfiLabelSize;
        instr.cost = cycle_cost(instr);
        return instr;
    }

    if (!valid_opcode(p[0])) {
        return fail("invalid opcode");
    }
    instr.op = static_cast<Opcode>(p[0]);

    auto need = [&](size_t n) { return avail >= n; };
    auto reg_ok = [&](uint8_t r) { return r < kNumRegs; };
    auto bnd_ok = [&](uint8_t b) { return b < kNumBndRegs; };

    switch (signature(instr.op)) {
      case Sig::kNone:
        instr.length = 1;
        break;
      case Sig::kReg:
        if (!need(2) || !reg_ok(p[1])) return fail("bad reg operand");
        instr.reg1 = p[1];
        instr.length = 2;
        break;
      case Sig::kRegImm64:
        if (!need(10) || !reg_ok(p[1])) return fail("bad mov ri");
        instr.reg1 = p[1];
        instr.imm = static_cast<int64_t>(get_le<uint64_t>(p + 2));
        instr.length = 10;
        break;
      case Sig::kRegImm32:
        if (!need(6) || !reg_ok(p[1])) return fail("bad reg imm32");
        instr.reg1 = p[1];
        instr.imm = static_cast<int32_t>(get_le<uint32_t>(p + 2));
        instr.length = 6;
        break;
      case Sig::kRegImm8:
        if (!need(3) || !reg_ok(p[1])) return fail("bad reg imm8");
        instr.reg1 = p[1];
        instr.imm = p[2];
        if (instr.imm > 63) return fail("shift amount > 63");
        instr.length = 3;
        break;
      case Sig::kRegReg:
        if (!need(3) || !reg_ok(p[1]) || !reg_ok(p[2])) {
            return fail("bad reg reg");
        }
        instr.reg1 = p[1];
        instr.reg2 = p[2];
        instr.length = 3;
        break;
      case Sig::kRegMem: {
        if (!need(2) || !reg_ok(p[1])) return fail("bad reg mem");
        instr.reg1 = p[1];
        size_t used = 0;
        if (!decode_mem(p + 2, avail - 2, instr.mem, used)) {
            return fail("bad mem operand");
        }
        instr.length = static_cast<uint32_t>(2 + used);
        break;
      }
      case Sig::kMem: {
        size_t used = 0;
        if (!need(2) || !decode_mem(p + 1, avail - 1, instr.mem, used)) {
            return fail("bad mem operand");
        }
        instr.length = static_cast<uint32_t>(1 + used);
        break;
      }
      case Sig::kImm32:
        if (!need(5)) return fail("truncated imm32");
        instr.imm = static_cast<int32_t>(get_le<uint32_t>(p + 1));
        instr.length = 5;
        break;
      case Sig::kCondImm32:
        if (!need(6) || p[1] >= kNumConds) return fail("bad jcc");
        instr.cond = static_cast<Cond>(p[1]);
        instr.imm = static_cast<int32_t>(get_le<uint32_t>(p + 2));
        instr.length = 6;
        break;
      case Sig::kImm16:
        if (!need(3)) return fail("truncated imm16");
        instr.imm = get_le<uint16_t>(p + 1);
        instr.length = 3;
        break;
      case Sig::kBndMem: {
        if (!need(2) || !bnd_ok(p[1])) return fail("bad bnd mem");
        instr.bnd = p[1];
        size_t used = 0;
        if (!decode_mem(p + 2, avail - 2, instr.mem, used)) {
            return fail("bad mem operand");
        }
        instr.length = static_cast<uint32_t>(2 + used);
        break;
      }
      case Sig::kBndReg:
        if (!need(3) || !bnd_ok(p[1]) || !reg_ok(p[2])) {
            return fail("bad bnd reg");
        }
        instr.bnd = p[1];
        instr.reg1 = p[2];
        instr.length = 3;
        break;
      case Sig::kBndBnd:
        if (!need(3) || !bnd_ok(p[1]) || !bnd_ok(p[2])) {
            return fail("bad bnd bnd");
        }
        instr.bnd = p[1];
        instr.reg1 = p[2];
        instr.length = 3;
        break;
      case Sig::kCfi:
        return fail("unreachable");
    }
    instr.cost = cycle_cost(instr);
    return instr;
}

std::string
to_string(const Instruction &instr)
{
    std::ostringstream ss;
    ss << opcode_name(instr.op);
    switch (signature(instr.op)) {
      case Sig::kNone:
        break;
      case Sig::kReg:
        ss << " r" << int(instr.reg1);
        break;
      case Sig::kRegImm64:
      case Sig::kRegImm32:
      case Sig::kRegImm8:
        ss << " r" << int(instr.reg1) << ", " << instr.imm;
        break;
      case Sig::kRegReg:
        ss << " r" << int(instr.reg1) << ", r" << int(instr.reg2);
        break;
      case Sig::kRegMem:
        if (is_store(instr.op)) {
            ss << " " << mem_to_string(instr.mem) << ", r"
               << int(instr.reg1);
        } else {
            ss << " r" << int(instr.reg1) << ", "
               << mem_to_string(instr.mem);
        }
        break;
      case Sig::kMem:
        ss << " *" << mem_to_string(instr.mem);
        break;
      case Sig::kImm32:
        if (transfer_kind(instr.op) == TransferKind::kDirect) {
            ss << " 0x" << std::hex << instr.direct_target() << std::dec;
        } else {
            ss << " " << instr.imm;
        }
        break;
      case Sig::kCondImm32:
        ss << "." << cond_name(instr.cond) << " 0x" << std::hex
           << instr.direct_target() << std::dec;
        break;
      case Sig::kImm16:
        ss << " " << instr.imm;
        break;
      case Sig::kBndMem:
        ss << " b" << int(instr.bnd) << ", " << mem_to_string(instr.mem);
        break;
      case Sig::kBndReg:
        ss << " b" << int(instr.bnd) << ", r" << int(instr.reg1);
        break;
      case Sig::kBndBnd:
        ss << " b" << int(instr.bnd) << ", b" << int(instr.reg1);
        break;
      case Sig::kCfi:
        ss << " " << instr.label_id;
        break;
    }
    return ss.str();
}

} // namespace occlum::isa
