/**
 * @file
 * Programmatic two-pass assembler for the OVM ISA.
 *
 * Used by the toolchain's code generator, by tests, and by the RIPE
 * security benchmark to hand-craft adversarial binaries. Instructions
 * are appended through typed helpers; direct control transfers may
 * reference named labels which are resolved at finish() time (all
 * encodings are fixed-length per opcode, so one layout pass suffices).
 */
#ifndef OCCLUM_ISA_ASSEMBLER_H
#define OCCLUM_ISA_ASSEMBLER_H

#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace occlum::isa {

/** Builds a code image instruction by instruction. */
class Assembler
{
  public:
    explicit Assembler(uint64_t base_vaddr = 0) : base_(base_vaddr) {}

    // ---- labels ----------------------------------------------------
    /** Bind `name` to the current position. */
    void bind(const std::string &name);
    /** Bind `name` to an arbitrary image offset (e.g. a data symbol). */
    void define_value(const std::string &name, uint64_t offset);
    /** True if a label has been bound. */
    bool is_bound(const std::string &name) const;

    // ---- raw escape hatches (for adversarial tests) -----------------
    /** Append raw bytes verbatim (may form invalid instructions). */
    void raw(const Bytes &bytes);
    /** Append one already-built instruction. */
    void emit(Instruction instr);
    /**
     * Append an instruction whose rip-relative memory operand should
     * resolve to label `mem_label` (disp patched at finish()).
     */
    void emit_mem_ref(Instruction instr, const std::string &mem_label);
    /** Append a direct transfer (jmp/jcc/call) to a named label. */
    void emit_branch(Instruction instr, const std::string &target);
    /** Append a mov_ri whose immediate is the address of `label`. */
    void emit_addr_of(Instruction instr, const std::string &label);

    // ---- instruction helpers ----------------------------------------
    void nop() { emit_simple(Opcode::kNop); }
    void hlt() { emit_simple(Opcode::kHlt); }
    void ltrap() { emit_simple(Opcode::kLtrap); }
    void eexit() { emit_simple(Opcode::kEexit); }
    void xrstor() { emit_simple(Opcode::kXrstor); }
    void wrfsbase(uint8_t r) { emit_reg(Opcode::kWrfsbase, r); }
    void rdcycle(uint8_t r) { emit_reg(Opcode::kRdcycle, r); }

    void cfi_label(uint32_t id = 0);

    void mov_ri(uint8_t r, int64_t imm);
    /** mov reg, label-address (resolved at finish). */
    void mov_rl(uint8_t r, const std::string &label);
    void mov_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kMovRR, rd, rs); }

    void load(uint8_t r, MemOperand m) { emit_rm(Opcode::kLoad, r, m); }
    void store(MemOperand m, uint8_t r) { emit_rm(Opcode::kStore, r, m); }
    void load8(uint8_t r, MemOperand m) { emit_rm(Opcode::kLoad8, r, m); }
    void store8(MemOperand m, uint8_t r) { emit_rm(Opcode::kStore8, r, m); }
    void load32(uint8_t r, MemOperand m) { emit_rm(Opcode::kLoad32, r, m); }
    void
    store32(MemOperand m, uint8_t r)
    {
        emit_rm(Opcode::kStore32, r, m);
    }
    void lea(uint8_t r, MemOperand m) { emit_rm(Opcode::kLea, r, m); }
    void vgather(uint8_t r, MemOperand m) { emit_rm(Opcode::kVGather, r, m); }

    void add_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kAddRR, rd, rs); }
    void add_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kAddRI, rd, i); }
    void sub_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kSubRR, rd, rs); }
    void sub_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kSubRI, rd, i); }
    void mul_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kMulRR, rd, rs); }
    void mul_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kMulRI, rd, i); }
    void div_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kDivRR, rd, rs); }
    void mod_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kModRR, rd, rs); }
    void and_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kAndRR, rd, rs); }
    void and_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kAndRI, rd, i); }
    void or_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kOrRR, rd, rs); }
    void or_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kOrRI, rd, i); }
    void xor_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kXorRR, rd, rs); }
    void xor_ri(uint8_t rd, int32_t i) { emit_ri(Opcode::kXorRI, rd, i); }
    void shl_ri(uint8_t rd, uint8_t i) { emit_ri(Opcode::kShlRI, rd, i); }
    void shr_ri(uint8_t rd, uint8_t i) { emit_ri(Opcode::kShrRI, rd, i); }
    void sar_ri(uint8_t rd, uint8_t i) { emit_ri(Opcode::kSarRI, rd, i); }
    void shl_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kShlRR, rd, rs); }
    void shr_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kShrRR, rd, rs); }
    void sar_rr(uint8_t rd, uint8_t rs) { emit_rr(Opcode::kSarRR, rd, rs); }
    void neg(uint8_t r) { emit_reg(Opcode::kNeg, r); }
    void not_(uint8_t r) { emit_reg(Opcode::kNot, r); }
    void cmp_rr(uint8_t ra, uint8_t rb) { emit_rr(Opcode::kCmpRR, ra, rb); }
    void cmp_ri(uint8_t ra, int32_t i) { emit_ri(Opcode::kCmpRI, ra, i); }
    void test_rr(uint8_t ra, uint8_t rb) { emit_rr(Opcode::kTestRR, ra, rb); }

    void jmp(const std::string &label);
    void jcc(Cond cond, const std::string &label);
    void call(const std::string &label);
    void jmp_reg(uint8_t r) { emit_reg(Opcode::kJmpReg, r); }
    void call_reg(uint8_t r) { emit_reg(Opcode::kCallReg, r); }
    void jmp_mem(MemOperand m);
    void call_mem(MemOperand m);
    void ret() { emit_simple(Opcode::kRet); }

    void push(uint8_t r) { emit_reg(Opcode::kPush, r); }
    void pop(uint8_t r) { emit_reg(Opcode::kPop, r); }
    void push_imm(int32_t imm);

    void bndcl_mem(uint8_t bnd, MemOperand m);
    void bndcu_mem(uint8_t bnd, MemOperand m);
    void bndcl_reg(uint8_t bnd, uint8_t r);
    void bndcu_reg(uint8_t bnd, uint8_t r);
    void bndmk(uint8_t bnd, MemOperand m);

    /** Paper mem_guard pseudo-instruction: bndcl + bndcu on bnd0. */
    void
    mem_guard(MemOperand m)
    {
        bndcl_mem(kBndData, m);
        bndcu_mem(kBndData, m);
    }

    /**
     * Paper cfi_guard pseudo-instruction: load the 8 bytes at the
     * target into the scratch register and equality-check them
     * against bnd1 (set by the LibOS to the domain's label value).
     */
    void
    cfi_guard(uint8_t target_reg)
    {
        MemOperand m;
        m.mode = AddrMode::kBaseDisp;
        m.base = target_reg;
        m.disp = 0;
        load(kScratch, m);
        bndcl_reg(kBndCfi, kScratch);
        bndcu_reg(kBndCfi, kScratch);
    }

    // ---- finalize ----------------------------------------------------
    /** Current offset from the image base (before finish()). */
    size_t size_estimate() const { return cursor_; }

    /** Resolve labels, encode, and return the image. */
    Bytes finish();

    /** Offset of a bound label from the image base. */
    uint64_t label_offset(const std::string &name) const;

    uint64_t base() const { return base_; }

  private:
    struct Item {
        bool is_raw = false;
        Bytes raw_bytes;
        Instruction instr;
        std::string label_ref;  // for direct transfers / mov_rl
        bool ref_is_addr = false; // mov_rl: patch imm with absolute addr
        std::string mem_ref;    // rip-relative mem operand target label
        uint64_t offset = 0;    // assigned during layout
        size_t length = 0;
    };

    void emit_simple(Opcode op);
    void emit_reg(Opcode op, uint8_t r);
    void emit_rr(Opcode op, uint8_t rd, uint8_t rs);
    void emit_ri(Opcode op, uint8_t rd, int64_t imm);
    void emit_rm(Opcode op, uint8_t r, MemOperand m);
    void push_item(Item item);

    uint64_t base_;
    size_t cursor_ = 0;
    std::vector<Item> items_;
    std::map<std::string, uint64_t> labels_;
};

/** Convenience MemOperand constructors. */
MemOperand mem_bd(uint8_t base, int32_t disp = 0);
MemOperand mem_sib(uint8_t base, uint8_t index, uint8_t scale_log2,
                   int32_t disp = 0);
MemOperand mem_rip(int32_t disp);
MemOperand mem_abs(uint64_t addr);

} // namespace occlum::isa

#endif // OCCLUM_ISA_ASSEMBLER_H
