#!/usr/bin/env bash
# CI job: run the tier-1 test suite under fixed fault-injection plans
# (OCCLUM_FAULT_PLAN, parsed by src/faultsim on first use). Each plan
# is fully seeded, so a failure here replays exactly from the plan
# string alone. Three axes:
#
#   plan 1: an AEX storm — every SIP instruction stream is interrupted
#           every 4096 instructions, exercising SSA save/scrub/restore
#           (bound registers included) under every existing test,
#   plan 2: flaky block device — 2% transient EAGAIN faults on reads
#           and writes, absorbed by EncFs's bounded retry/backoff,
#   plan 3: lossy network — 5% segment loss, 5% duplicates, frequent
#           short reads, absorbed by netsim's retransmission model,
#   plan 4: lossy network + AEX storm combined — drops and duplicates
#           shift every arrival edge while AEXes shift every quantum
#           boundary, stressing the wait-queue wakeup path under the
#           poll()-driven lighttpd loop (FaultSimAex.StormOverPoll…
#           and the Poll.* suite run under this plan like the rest of
#           tier-1): a wakeup that is lost, early, or aimed at the
#           wrong process shows up as a stall or a short response,
#   plan 5: attested RPC under hostile-network conditions — drops,
#           duplicates, and aggressive short reads combined with an
#           AEX storm, aimed at the src/attest handshake and record
#           layer (the AttestedRpcScenario.* and Handshake.* tests
#           run under this plan like the rest of tier-1). The
#           invariant is all-or-nothing: either the handshake
#           completes and both peers hold identical directional keys,
#           or the endpoint fails *closed* with a named AttestError —
#           never a half-open channel, never mismatched keys.
#   plan 6: the epoll dispatch path under a hostile network + AEX
#           storm — segment drops and duplicates shift and re-fire
#           every readiness edge while AEXes slice every quantum,
#           aimed at the kernel-side interest/ready lists (the
#           Epoll.* battery and the EpollWorkload.* reverse-proxy +
#           backend-pool scenario run under this plan like the rest
#           of tier-1). A duplicated arrival must not double-report
#           an edge-triggered fd, a dropped-then-retransmitted edge
#           must still wake a blocked kEpollWait, and the proxy's
#           spawn + pipes + sockets pipeline must still serve every
#           request.
#   plan 7: a dense AEX storm with the transition-orderliness monitor
#           in strict mode (DESIGN.md §9) — every EENTER, EEXIT, AEX,
#           ERESUME, and per-core TCS rebind is checked online against
#           the legal automaton and the first illegal transition
#           panics with full context. The SmashEx-shaped hazards
#           (nested entry or rebind on an occupied NSSA=1 SSA frame)
#           must surface as refusals, never as serviced transitions.
#
# Plan 1 additionally runs under ASan+UBSan: an injected AEX touches
# the SSA snapshot path on every quantum, the place a lifetime bug
# would hide.
#
# Usage: scripts/ci_faults.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

PLANS=(
    "seed=101;aex_every=4096"
    "seed=202;dev_read_transient=0.02;dev_write_transient=0.02"
    "seed=303;net_drop=0.05;net_dup=0.05;net_short_read=0.25"
    "seed=404;net_drop=0.05;net_dup=0.05;aex_every=2048"
    "seed=505;net_drop=0.08;net_dup=0.08;net_short_read=0.25;aex_every=2048"
    "seed=606;net_drop=0.05;net_dup=0.05;net_short_read=0.25;aex_every=2048"
    "seed=777;aex_every=768"
)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

for plan in "${PLANS[@]}"; do
    echo "=== tier-1 under OCCLUM_FAULT_PLAN='$plan' ==="
    OCCLUM_FAULT_PLAN="$plan" \
        ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
done

# Plan 7 again with the orderliness monitor in strict mode: one
# illegal enclave transition anywhere in tier-1 aborts the run.
echo "=== tier-1 under OCCLUM_FAULT_PLAN='${PLANS[6]}' + OCCLUM_ORDERLINESS=strict ==="
OCCLUM_FAULT_PLAN="${PLANS[6]}" OCCLUM_ORDERLINESS=strict \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The AEX-storm plan again, under the sanitizers.
ASAN_DIR="${BUILD_DIR}-asan-faults"
cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DOCCLUM_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

echo "=== tier-1 + ASan under OCCLUM_FAULT_PLAN='${PLANS[0]}' ==="
OCCLUM_FAULT_PLAN="${PLANS[0]}" \
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"
