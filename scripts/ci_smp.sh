#!/usr/bin/env bash
# CI job: the SMP scheduler (DESIGN.md §3.4) across core counts.
#
#   leg 1: the full tier-1 suite with OCCLUM_CORES=1 — the unicore
#          path must reproduce the pre-SMP kernel exactly (the env
#          var only reaches OcclumSystem-based tests; the targeted
#          Smp.* / EpollWorkload.* batteries sweep core counts
#          internally on LinuxSystem regardless),
#   leg 2: the full tier-1 suite with OCCLUM_CORES=4 — every
#          OcclumSystem scenario reruns over per-core run queues,
#          work stealing, and cross-core wakeups. Tests that assert
#          an exact unicore interleaving pin Config::cores = 1, so
#          this leg must be as green as leg 1,
#   leg 3: a per-core AEX storm over the multi-core epoll
#          reverse-proxy scenario — each core's countdown slices its
#          own quanta, so every SSA save/scrub/restore happens on
#          the core (and TCS) that was actually interrupted, while
#          determinism is re-asserted run-to-run at cores {1,2,4}.
#   leg 4: the same storms with the transition-orderliness monitor
#          (DESIGN.md §9) in strict mode — an illegal EENTER / EEXIT /
#          AEX / ERESUME / rebind sequence on any TCS panics with
#          full context instead of being counted, so a scheduler
#          regression that services a SmashEx-shaped transition
#          cannot hide behind a green run.
#
# Usage: scripts/ci_smp.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

for cores in 1 4; do
    echo "=== tier-1 under OCCLUM_CORES=$cores ==="
    OCCLUM_CORES="$cores" \
        ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
done

echo "=== AEX storm over the multi-core proxy (per-core SSA) ==="
OCCLUM_FAULT_PLAN="seed=707;aex_every=2048" OCCLUM_CORES=4 \
    "$BUILD_DIR/tests/epoll_test" \
    --gtest_filter='EpollWorkload.*'

echo "=== AEX storm over the SMP batteries ==="
OCCLUM_FAULT_PLAN="seed=707;aex_every=2048" \
    "$BUILD_DIR/tests/oskit_test" --gtest_filter='Smp.*'

echo "=== monitor-strict: storms + orderliness battery ==="
OCCLUM_ORDERLINESS=strict OCCLUM_FAULT_PLAN="seed=707;aex_every=2048" \
    OCCLUM_CORES=4 "$BUILD_DIR/tests/epoll_test" \
    --gtest_filter='EpollWorkload.*'
OCCLUM_ORDERLINESS=strict "$BUILD_DIR/tests/orderliness_test"
