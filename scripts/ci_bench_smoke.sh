#!/usr/bin/env bash
# CI job: smoke-test the benchmark recording pipeline. Runs the
# cheapest figure bench through scripts/bench_record.sh and checks
# that a snapshot with machine-readable JSON came out, so bench or
# script rot is caught on every push rather than at paper-figure
# time. The full (slow) suite is recorded manually via
# scripts/bench_record.sh.
#
# Usage: scripts/ci_bench_smoke.sh [build-dir]   (default: build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
LABEL="ci-smoke"

BENCH_FILTER='bench_fig6cd_file_io' \
    scripts/bench_record.sh "$BUILD_DIR" "$LABEL"

OUT_DIR="bench/results/$LABEL"
JSON="$OUT_DIR/BENCH_fig6cd_file_io.json"
if [ ! -s "$JSON" ]; then
    echo "smoke failed: $JSON missing or empty" >&2
    exit 1
fi
grep -q '"rows"\|"name"' "$JSON" ||
    { echo "smoke failed: $JSON has no report payload" >&2; exit 1; }

# Superblock-off leg: the same bench with the trace tier pinned off
# (OCCLUM_VM_SUPERBLOCK=0). The fig6cd report is simulated-time only
# and the tier is a wall-clock device, so the two JSONs must be
# byte-identical — any divergence means the tier perturbed simulated
# results and fails CI here.
OCCLUM_VM_SUPERBLOCK=0 BENCH_FILTER='bench_fig6cd_file_io' \
    scripts/bench_record.sh "$BUILD_DIR" "$LABEL-sb0"
JSON_SB0="bench/results/$LABEL-sb0/BENCH_fig6cd_file_io.json"
cmp "$JSON" "$JSON_SB0" ||
    { echo "smoke failed: superblock tier changed simulated results" >&2;
      exit 1; }

# The smoke snapshots are CI artifacts, not recorded results.
rm -rf "$OUT_DIR" "bench/results/$LABEL-sb0"
echo "bench smoke OK"
