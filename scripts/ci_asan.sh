#!/usr/bin/env bash
# CI job: build the whole tree with AddressSanitizer + UBSan and run
# the tier-1 test suite. Catches lifetime bugs the plain build can't —
# e.g. stale Page or Block pointers left behind by the interpreter's
# block cache or the address-space TLB after an unmap.
#
# Usage: scripts/ci_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DOCCLUM_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: a sanitizer report must fail the job, not scroll by.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Extra leg: the vm tests with the superblock tier forced on, so the
# trace translator, peephole fusions, and computed-goto replay loop
# run under ASan/UBSan even for tests that would otherwise exercise
# only the lower tiers (uop field-reuse bugs — pack slots, fused
# check charges, trace linking — are exactly the out-of-bounds /
# aliasing class sanitizers catch).
OCCLUM_VM_SUPERBLOCK=1 "$BUILD_DIR/tests/vm_test"

# Extra leg: the SMP scheduler under the sanitizers. OCCLUM_CORES=4
# reruns every OcclumSystem scenario over per-core run queues, and
# the targeted batteries exercise stealing, cross-core wakeups, and
# the dup2/epoll fd-lifecycle paths (the roster use-after-free class
# only ASan can see).
OCCLUM_CORES=4 "$BUILD_DIR/tests/libos_test"
OCCLUM_CORES=4 "$BUILD_DIR/tests/epoll_test"
"$BUILD_DIR/tests/oskit_test" --gtest_filter='Smp.*:Regression.*:Timers.*'

# Extra leg: the transition-orderliness battery (DESIGN.md §9) under
# the sanitizers with the monitor in strict mode — the AEX storms and
# SmashEx-shaped refusal paths walk the SSA snapshot, scrub, and TCS
# rebind code where a lifetime bug would hide, and any illegal
# enclave transition panics instead of being counted.
OCCLUM_ORDERLINESS=strict "$BUILD_DIR/tests/orderliness_test"
