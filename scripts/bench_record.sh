#!/usr/bin/env bash
# Record a benchmark snapshot: Release-build the figure benches, run
# each one, and collect the machine-readable BENCH_*.json files they
# emit into a dated directory under bench/results/. Committing a
# snapshot pins the numbers a PR claims (speedups, overhead
# percentages) to a commit, so regressions show up as a diff instead
# of a memory.
#
# Usage: scripts/bench_record.sh [build-dir] [label]
#   build-dir  CMake build tree to (re)configure as Release
#              (default: build-bench)
#   label      snapshot directory name under bench/results/
#              (default: today's date, YYYY-MM-DD)
#   BENCH_FILTER  optional regex; only benches matching it run
#                 (used by ci_bench_smoke.sh to keep CI fast)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
LABEL="${2:-$(date +%Y-%m-%d)}"
FILTER="${BENCH_FILTER:-.}"
OUT_DIR="bench/results/$LABEL"

BENCHES=(
    bench_fig5a_fish
    bench_fig5b_gcc
    bench_fig5c_lighttpd
    bench_fig6a_spawn
    bench_fig6b_pipe
    bench_fig6cd_file_io
    bench_fig7a_specint
    bench_fig7b_breakdown
    bench_ablation_optimizations
    bench_attested_rpc
    bench_smp
)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
TARGETS=()
for b in "${BENCHES[@]}"; do
    [[ "$b" =~ $FILTER ]] && TARGETS+=("$b")
done
if [ "${#TARGETS[@]}" -eq 0 ]; then
    echo "BENCH_FILTER='$FILTER' matches no benches" >&2
    exit 1
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TARGETS[@]}"

mkdir -p "$OUT_DIR"
{
    echo "commit: $(git rev-parse HEAD 2>/dev/null || echo unknown)"
    echo "date:   $(date -u +%Y-%m-%dT%H:%M:%SZ)"
    echo "host:   $(uname -srm)"
    echo "filter: $FILTER"
} > "$OUT_DIR/MANIFEST.txt"

REPO_ROOT="$PWD"
for b in "${TARGETS[@]}"; do
    echo "== $b =="
    # Benches write BENCH_<name>.json into their working directory,
    # so run them from the snapshot directory; keep stdout as the
    # human-readable table log alongside the JSON.
    (cd "$OUT_DIR" &&
        "$REPO_ROOT/$BUILD_DIR/bench/$b" | tee "$b.log")
done

echo
echo "snapshot recorded in $OUT_DIR:"
ls "$OUT_DIR"
